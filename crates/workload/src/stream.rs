//! Zone-diff event streams — the driver-layer input for incremental
//! detection.
//!
//! Production homograph monitoring is not a corpus pass: a TLD
//! publishes zone-file diffs (newly-registered names trickling in),
//! and the popularity reference list itself churns as brands trend in
//! and out. This module turns a generated [`Workload`] into exactly
//! that feed: a deterministic, time-ordered sequence of [`ZoneEvent`]s
//! — registration events over the full corpus (both Table 6 exports,
//! unioned) interleaved with reference-churn events — to be replayed
//! into a `sham_core` `DetectorSession`.
//!
//! The registration *order* is a seeded shuffle of the sorted union
//! corpus: zone diffs arrive in registration order, not alphabetical
//! order, and a shuffled replay exercises exactly that while staying
//! reproducible run to run.

use crate::{reference_list, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sham_punycode::DomainName;

/// One event of a production ingest feed.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneEvent {
    /// A name appeared in the zone diff: a new registration.
    Registered(DomainName),
    /// The reference list churned: `added` stems are trending in,
    /// `removed` stems fell out of the popularity window.
    ReferenceChurn {
        /// Stems entering the reference list.
        added: Vec<String>,
        /// Stems leaving it.
        removed: Vec<String>,
    },
}

/// Shape of the generated feed.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Registrations between two churn events; `0` disables churn.
    pub churn_every: usize,
    /// Trending stems rotating in per churn event (the same number
    /// rotates out one event later).
    pub churn_size: usize,
    /// Seed for the registration-order shuffle.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { churn_every: 4_096, churn_size: 2, seed: 0x0005_7EA4 }
    }
}

/// The union corpus of the workload's two exports (zone file + flat
/// list), deduplicated and sorted — the same Step 1 ingestion the
/// batch study performs, so a streamed replay and a batch run see the
/// identical domain set.
pub fn union_corpus(workload: &Workload) -> Vec<DomainName> {
    let (zone, errors) = sham_dns::parse_lenient(&workload.zone_text, "com");
    debug_assert!(errors.is_empty(), "workload zones are well-formed");
    let (list_names, _bad) = sham_dns::parse_domain_list(&workload.domain_list_text);
    let mut union: Vec<DomainName> = zone.owner_names().into_iter().cloned().collect();
    union.extend(list_names);
    union.sort();
    union.dedup();
    union
}

/// Generates the event feed: every union-corpus name exactly once as a
/// [`ZoneEvent::Registered`] (in seeded-shuffle order), with a
/// [`ZoneEvent::ReferenceChurn`] every `churn_every` registrations.
/// Churn event `k` rotates in `churn_size` fresh trending stems (drawn
/// from beyond the workload's reference window, so they are brand-new
/// to the detector) and rotates out the stems event `k − 1` added —
/// a sliding trending window over an otherwise stable list.
pub fn event_stream(workload: &Workload, config: &StreamConfig) -> Vec<ZoneEvent> {
    let mut corpus = union_corpus(workload);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Fisher–Yates: registration order, not alphabetical order.
    for i in (1..corpus.len()).rev() {
        corpus.swap(i, rng.gen_range(0..=i));
    }

    let churn_events = corpus.len().checked_div(config.churn_every).unwrap_or(0);
    // Trending stems come from past the reference window: stems the
    // base list does not contain. `reference_list` is not prefix-stable
    // (mid-rank brands move with the list size), so membership is
    // filtered explicitly rather than assumed from position.
    let need = churn_events * config.churn_size;
    let base: std::collections::HashSet<&String> = workload.references.iter().collect();
    let pool: Vec<String> = reference_list(workload.references.len() + 2 * need + 8)
        .into_iter()
        .filter(|stem| !base.contains(stem))
        .take(need)
        .collect();
    assert!(pool.len() >= need, "trending pool exhausted");

    let mut events = Vec::with_capacity(corpus.len() + churn_events);
    let mut previous: &[String] = &[];
    for (i, name) in corpus.into_iter().enumerate() {
        if config.churn_every > 0 && i > 0 && i % config.churn_every == 0 {
            let k = i / config.churn_every - 1;
            let added = &pool[k * config.churn_size..(k + 1) * config.churn_size];
            events.push(ZoneEvent::ReferenceChurn {
                added: added.to_vec(),
                removed: previous.to_vec(),
            });
            previous = added;
        }
        events.push(ZoneEvent::Registered(name));
    }
    events
}

/// Shape of a multi-TLD feed: the single-TLD feed parameters plus the
/// TLD set registrations are spread across.
#[derive(Debug, Clone)]
pub struct MultiTldConfig {
    /// Registration order, churn cadence and seed of the base feed.
    pub base: StreamConfig,
    /// TLDs the interleaved feed carries; each registration is assigned
    /// one (seeded, so the assignment is reproducible).
    pub tlds: Vec<String>,
}

impl Default for MultiTldConfig {
    fn default() -> Self {
        MultiTldConfig {
            base: StreamConfig::default(),
            tlds: vec!["com".to_string(), "net".to_string(), "org".to_string()],
        }
    }
}

/// Generates an *interleaved multi-TLD* feed: the same seeded-shuffle
/// registration order and sliding churn window as [`event_stream`],
/// but each registered name is re-homed onto one of `config.tlds`
/// (seeded draw per registration, weighted toward the first TLD the
/// way real zones skew toward `.com` — the first entry gets as many
/// draws as the rest combined). Reference churn stays global: one
/// popularity list serves every TLD, which is exactly the sharing the
/// `sham_core` `SessionRouter` exploits.
///
/// The multiset of registered *stems* is identical to the single-TLD
/// feed's, so per-TLD slices of this feed partition the union corpus —
/// the equivalence the router cross-check in
/// `examples/phishing_hunt.rs` pins.
pub fn multi_tld_event_stream(
    workload: &Workload,
    config: &MultiTldConfig,
) -> Vec<ZoneEvent> {
    assert!(!config.tlds.is_empty(), "a feed needs at least one TLD");
    let mut rng = StdRng::seed_from_u64(config.base.seed ^ 0x71D5_F00D);
    event_stream(workload, &config.base)
        .into_iter()
        .map(|event| match event {
            ZoneEvent::ReferenceChurn { .. } => event,
            ZoneEvent::Registered(name) => {
                // Index 0 is drawn with probability exactly 1/2 (zone
                // skew), the remaining TLDs uniformly with 1/(2(k−1)).
                let tld = if config.tlds.len() == 1 {
                    config.tlds[0].as_str()
                } else {
                    let rest = config.tlds.len() - 1;
                    let draw = rng.gen_range(0..2 * rest);
                    if draw < rest {
                        config.tlds[0].as_str()
                    } else {
                        config.tlds[draw - rest + 1].as_str()
                    }
                };
                let stem = name.without_tld().expect("corpus names have a TLD");
                let rehomed = DomainName::parse(&format!("{stem}.{tld}"))
                    .expect("re-homing a valid name onto a valid TLD stays valid");
                ZoneEvent::Registered(rehomed)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadConfig;

    fn workload() -> Workload {
        Workload::generate(WorkloadConfig::test())
    }

    #[test]
    fn stream_replays_the_union_corpus_exactly_once() {
        let w = workload();
        let corpus = union_corpus(&w);
        let events = event_stream(&w, &StreamConfig::default());
        let mut replayed: Vec<DomainName> = events
            .iter()
            .filter_map(|e| match e {
                ZoneEvent::Registered(d) => Some(d.clone()),
                ZoneEvent::ReferenceChurn { .. } => None,
            })
            .collect();
        replayed.sort();
        assert_eq!(replayed, corpus);
        // Determinism: same seed, same feed.
        assert_eq!(events, event_stream(&w, &StreamConfig::default()));
        // A different seed reorders registrations but keeps the set.
        let other = event_stream(
            &w,
            &StreamConfig { seed: 1, ..StreamConfig::default() },
        );
        assert_ne!(events, other);
    }

    #[test]
    fn churn_rotates_a_sliding_window() {
        let w = workload();
        let config = StreamConfig { churn_every: 500, churn_size: 2, seed: 9 };
        let events = event_stream(&w, &config);
        let churns: Vec<(&[String], &[String])> = events
            .iter()
            .filter_map(|e| match e {
                ZoneEvent::ReferenceChurn { added, removed } => {
                    Some((added.as_slice(), removed.as_slice()))
                }
                ZoneEvent::Registered(_) => None,
            })
            .collect();
        assert!(churns.len() >= 2, "test corpus must produce churn");
        // First churn removes nothing; each later one removes exactly
        // what its predecessor added.
        assert!(churns[0].1.is_empty());
        for pair in churns.windows(2) {
            assert_eq!(pair[0].0, pair[1].1);
        }
        // Trending stems are new: none is in the base reference list.
        for (added, _) in &churns {
            for stem in *added {
                assert!(!w.references.contains(stem), "{stem} already referenced");
            }
        }
        // Churn off ⇒ registrations only.
        let quiet = event_stream(&w, &StreamConfig { churn_every: 0, churn_size: 0, seed: 9 });
        assert!(quiet
            .iter()
            .all(|e| matches!(e, ZoneEvent::Registered(_))));
    }

    #[test]
    fn multi_tld_feed_rehomes_stems_without_losing_any() {
        let w = workload();
        let config = MultiTldConfig::default();
        let events = multi_tld_event_stream(&w, &config);
        // Deterministic: same config, same feed.
        assert_eq!(events, multi_tld_event_stream(&w, &config));

        // Same stem multiset as the single-TLD feed, every TLD from the
        // configured set actually used, nothing else.
        let mut stems: Vec<String> = Vec::new();
        let mut seen_tlds: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        for event in &events {
            if let ZoneEvent::Registered(d) = event {
                stems.push(d.without_tld().unwrap().to_string());
                seen_tlds.insert(d.tld().to_string());
            }
        }
        stems.sort();
        let mut base_stems: Vec<String> = union_corpus(&w)
            .iter()
            .map(|d| d.without_tld().unwrap().to_string())
            .collect();
        base_stems.sort();
        assert_eq!(stems, base_stems);
        let expected: std::collections::BTreeSet<String> =
            config.tlds.iter().cloned().collect();
        assert_eq!(seen_tlds, expected);

        // Churn events ride through untouched (same cadence + windows).
        let churn_of = |events: &[ZoneEvent]| {
            events
                .iter()
                .filter(|e| matches!(e, ZoneEvent::ReferenceChurn { .. }))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(churn_of(&events), churn_of(&event_stream(&w, &config.base)));
    }
}
