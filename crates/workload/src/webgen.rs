//! Web-layer ground truth: the activity funnel, site profiles, passive
//! DNS volumes, blacklists, and the zone/domain-list texts.
//!
//! The paper's §6 funnel: 3,280 detected homographs → 2,294 with NS
//! records → 1,909 with A records → 1,647 answering on TCP/80 or 443,
//! which then split into Table 12's categories, Table 13's redirect
//! kinds, and Table 14's blacklist hits. The generator reproduces those
//! proportions at any scale.

use crate::attacker::PlantedHomograph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sham_web::{Blacklist, SiteProfile, PARKING_NS};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-domain ground truth assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteAssignment {
    /// Registered (has NS records somewhere).
    pub has_ns: bool,
    /// Has an A record.
    pub has_a: bool,
    /// Answers on TCP/80.
    pub open_80: bool,
    /// Answers on TCP/443.
    pub open_443: bool,
    /// Behaviour profile (meaningful when active).
    pub profile: SiteProfile,
    /// True global DNS lookup volume (passive DNS samples this).
    pub resolutions: u64,
    /// Has an MX record (Table 11's MX column).
    pub has_mx: bool,
    /// Linked from the public web (Table 11).
    pub web_link: bool,
    /// Linked from social networks (Table 11).
    pub sns_link: bool,
}

/// The funnel and category proportions, in paper units (per 3,280).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunnelPlan {
    /// Homographs with NS records (paper: 2,294 / 3,280).
    pub ns_per_3280: u32,
    /// With A records (paper: 1,909).
    pub a_per_3280: u32,
    /// Responding on 80/443 (paper: 1,647).
    pub active_per_3280: u32,
    /// Table 12 counts per 1,647 active:
    /// (parking, for sale, redirect, normal, empty, error).
    pub categories_per_1647: [u32; 6],
    /// Table 13 redirect split per 338: (brand, legitimate, malicious).
    pub redirects_per_338: [u32; 3],
    /// Table 14 blacklist sizes per 3,280 (hpHosts, GSB, Symantec).
    pub blacklisted_per_3280: [u32; 3],
}

impl Default for FunnelPlan {
    fn default() -> Self {
        FunnelPlan {
            ns_per_3280: 2_294,
            a_per_3280: 1_909,
            active_per_3280: 1_647,
            categories_per_1647: [348, 345, 338, 281, 222, 113],
            redirects_per_338: [178, 125, 35],
            blacklisted_per_3280: [242, 13, 8],
        }
    }
}

/// Everything the measurement study needs to know about the world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The planted homographs.
    pub homographs: Vec<PlantedHomograph>,
    /// Per-domain assignment, keyed by full ACE name.
    pub assignments: HashMap<String, SiteAssignment>,
    /// The three blacklist feeds (hpHosts-like, GSB-like, Symantec-like).
    pub blacklists: Vec<Blacklist>,
}

fn scale(n: usize, per: u32, of: u32) -> usize {
    (n * per as usize + of as usize / 2) / of as usize
}

/// Assigns the activity funnel, categories, resolutions and blacklists.
pub fn assign(
    homographs: Vec<PlantedHomograph>,
    reference_ranks: &HashMap<String, usize>,
    plan: &FunnelPlan,
    seed: u64,
) -> GroundTruth {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = homographs.len();
    let ns_count = scale(n, plan.ns_per_3280, 3_280);
    let a_count = scale(n, plan.a_per_3280, 3_280);
    let active_count = scale(n, plan.active_per_3280, 3_280);

    // Category targets over the active population.
    let active_total: u32 = plan.categories_per_1647.iter().sum();
    let mut category_quota: Vec<usize> = plan
        .categories_per_1647
        .iter()
        .map(|&c| scale(active_count, c, active_total))
        .collect();
    let redirect_total: u32 = plan.redirects_per_338.iter().sum();
    let mut redirect_quota: Vec<usize> = plan
        .redirects_per_338
        .iter()
        .map(|&c| scale(category_quota[2], c, redirect_total))
        .collect();

    let mut assignments: HashMap<String, SiteAssignment> = HashMap::new();
    let mut hp = Blacklist::new("hpHosts");
    let mut gsb = Blacklist::new("GSB");
    let mut sym = Blacklist::new("Symantec");

    // Pre-shuffled index order for funnel assignment, deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    for (pos, &idx) in order.iter().enumerate() {
        let h = &homographs[idx];
        let has_ns = pos < ns_count;
        let has_a = pos < a_count;
        let active = pos < active_count;

        // Pick a category for active sites from the remaining quota.
        let profile = if active {
            let cat = {
                let remaining: Vec<usize> = category_quota
                    .iter()
                    .enumerate()
                    .filter(|(_, &q)| q > 0)
                    .map(|(i, _)| i)
                    .collect();
                if remaining.is_empty() {
                    3 // normal
                } else {
                    remaining[rng.gen_range(0..remaining.len())]
                }
            };
            if category_quota[cat] > 0 {
                category_quota[cat] -= 1;
            }
            match cat {
                0 => SiteProfile::Parked {
                    ns_provider: format!(
                        "ns1.{}",
                        PARKING_NS[rng.gen_range(0..PARKING_NS.len())]
                    ),
                },
                1 => SiteProfile::ForSale,
                2 => {
                    // Redirect: split into brand / legitimate / malicious.
                    let kinds: Vec<usize> = redirect_quota
                        .iter()
                        .enumerate()
                        .filter(|(_, &q)| q > 0)
                        .map(|(i, _)| i)
                        .collect();
                    let kind = if kinds.is_empty() {
                        1
                    } else {
                        kinds[rng.gen_range(0..kinds.len())]
                    };
                    if redirect_quota.get(kind).copied().unwrap_or(0) > 0 {
                        redirect_quota[kind] -= 1;
                    }
                    let target = match kind {
                        0 => format!("{}.com", h.target), // brand protection
                        1 => "unrelated-landing.com".to_string(),
                        _ => {
                            let lander = format!("lander-{}.com", rng.gen_range(0..50));
                            hp.add(&lander);
                            lander
                        }
                    };
                    SiteProfile::Redirect { target }
                }
                3 => SiteProfile::Normal,
                4 => SiteProfile::Empty,
                _ => SiteProfile::Error,
            }
        } else {
            SiteProfile::Error
        };

        // Resolution volume: Zipf in the homograph's own popularity plus a
        // boost for homographs of highly ranked references.
        // Capped so no organically generated homograph outranks the
        // planted Table 11 stars (max ≈ 200 × 1,500/11 ≈ 27 K, well under
        // the least-resolved star's 36 K).
        let rank_boost = reference_ranks
            .get(&h.target)
            .map(|&r| 1_500.0 / (r as f64 + 10.0))
            .unwrap_or(1.0);
        let base: f64 = rng.gen_range(1.0..200.0);
        let resolutions = (base * rank_boost) as u64 + rng.gen_range(0..50u64);

        // MX presence: homographs of mail brands keep MX records (the
        // paper found gmail/yahoo homographs with MX).
        let mail_brand = matches!(h.target.as_str(), "gmail" | "yahoo" | "outlook");
        let has_mx = mail_brand && rng.gen_bool(0.7);

        // A sliver of sites serve HTTPS only (paper: 1,647 unique active
        // vs 1,642 on port 80 — five HTTPS-only hosts).
        let https_only = active && rng.gen_bool(0.004);
        assignments.insert(
            h.ace.clone(),
            SiteAssignment {
                has_ns,
                has_a: has_ns && has_a,
                open_80: active && !https_only,
                open_443: active && (https_only || rng.gen_bool(0.42)), // ≈700/1647
                profile,
                resolutions,
                has_mx,
                web_link: rng.gen_bool(0.25),
                sns_link: rng.gen_bool(0.12),
            },
        );
        let _ = pos;
    }

    // Blacklists over the whole homograph set (Table 14 includes
    // non-active domains), nested: Symantec ⊂ GSB-ish ⊂ hpHosts mostly.
    // Picks are uniform over the homograph population; since ~40% of the
    // Zipf tail targets references outside the top-1k, §6.4's reverting
    // analysis lands near the paper's 91-of-242 share naturally.
    let hp_count = scale(n, plan.blacklisted_per_3280[0], 3_280);
    let gsb_count = scale(n, plan.blacklisted_per_3280[1], 3_280);
    let sym_count = scale(n, plan.blacklisted_per_3280[2], 3_280);
    let mut mal_order: Vec<usize> = (0..n).collect();
    for i in (1..mal_order.len()).rev() {
        let j = rng.gen_range(0..=i);
        mal_order.swap(i, j);
    }
    for (k, &idx) in mal_order.iter().take(hp_count).enumerate() {
        let ace = &homographs[idx].ace;
        hp.add(ace);
        if k < gsb_count {
            gsb.add(ace);
        }
        if k < sym_count {
            sym.add(ace);
        }
    }

    GroundTruth {
        homographs,
        assignments,
        blacklists: vec![hp, gsb, sym],
    }
}

/// Plants the paper's Table 11 stars: named high-traffic homographs with
/// the categories/MX flags the paper reports. Returns the planted ACE
/// names. Call after [`assign`].
pub fn plant_resolution_stars(truth: &mut GroundTruth) -> Vec<String> {
    // (stem, target, resolutions, profile, has_mx)
    let stars: Vec<(&str, &str, u64, SiteProfile, bool)> = vec![
        // The active phishing site with the most lookups (gmaıl).
        ("gmaıl", "gmail", 615_447, SiteProfile::Normal, true),
        // A legitimate portal (döviz) — the paper's one non-abusive star.
        ("döviz", "doviz", 127_417, SiteProfile::Normal, false),
        ("ġmail", "gmail", 74_699, SiteProfile::Parked { ns_provider: "ns1.parkingcrew.net".into() }, true),
        ("gmàil", "gmail", 63_233, SiteProfile::Parked { ns_provider: "ns1.sedoparking.com".into() }, false),
        ("gmaiĺ", "gmail", 49_248, SiteProfile::Parked { ns_provider: "ns1.bodis.com".into() }, false),
        ("yàhoo", "yahoo", 44_368, SiteProfile::Parked { ns_provider: "ns1.above.com".into() }, true),
        ("shädbase", "shadbase", 38_556, SiteProfile::Parked { ns_provider: "ns1.parklogic.com".into() }, false),
        ("youtubé", "youtube", 37_713, SiteProfile::ForSale, false),
        ("perú", "peru", 36_405, SiteProfile::Parked { ns_provider: "ns1.cashparking.com".into() }, false),
        ("exṕansion", "expansion", 56_918, SiteProfile::Parked { ns_provider: "ns1.dan.com".into() }, true),
    ];
    let mut planted = Vec::new();
    for (stem, target, res, profile, mx) in stars {
        let Ok(label) = sham_punycode::ace::to_ascii(stem) else { continue };
        let ace = format!("{label}.com");
        // The attacker model may have organically registered the same
        // stem; keep the ground-truth list duplicate-free and just
        // overwrite the site assignment below.
        if !truth.homographs.iter().any(|h| h.ace == ace) {
            // gmaıl's dotless ı is listed by both databases; the other
            // stars use small accents only SimChar knows.
            let class = if stem == "gmaıl" {
                crate::attacker::SubClass::Both
            } else {
                crate::attacker::SubClass::SimCharOnly
            };
            truth.homographs.push(PlantedHomograph {
                unicode_stem: stem.to_string(),
                ace: ace.clone(),
                target: target.to_string(),
                class,
                substitutions: 1,
            });
        }
        truth.assignments.insert(
            ace.clone(),
            SiteAssignment {
                has_ns: true,
                has_a: true,
                open_80: true,
                open_443: true,
                profile,
                resolutions: res,
                has_mx: mx,
                web_link: true,
                sns_link: res > 100_000,
            },
        );
        planted.push(ace);
    }
    // The top star is an operating phishing site: blacklist it.
    if let Some(first) = planted.first() {
        truth.blacklists[0].add(first);
        truth.blacklists[1].add(first);
    }
    planted
}

/// Renders the zone file: every domain with `has_ns` gets NS records
/// (parking NS for parked sites), `has_a` adds an A record, `has_mx` an
/// MX record. Benign domains all get generic hosting records.
pub fn zone_text(
    benign: &[String],
    truth: &GroundTruth,
    include_benign_fraction_permille: u32,
    seed: u64,
) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::with_capacity(benign.len() * 48);
    let _ = writeln!(s, "$ORIGIN com.");
    let _ = writeln!(s, "$TTL 172800");
    for (i, stem) in benign.iter().enumerate() {
        if rng.gen_range(0..1000u32) >= include_benign_fraction_permille {
            continue;
        }
        let _ = writeln!(s, "{stem} IN NS ns{}.hosting{}.example.", (i % 2) + 1, i % 97);
        if i % 3 != 0 {
            let _ = writeln!(s, "{stem} IN A 198.51.{}.{}", (i / 250) % 256, i % 250 + 1);
        }
    }
    for h in &truth.homographs {
        let Some(a) = truth.assignments.get(&h.ace) else { continue };
        if !a.has_ns {
            continue;
        }
        let stem = h.ace.trim_end_matches(".com");
        let ns = match &a.profile {
            SiteProfile::Parked { ns_provider } => format!("{ns_provider}."),
            _ => format!("ns1.hosting{}.example.", stem.len() % 97),
        };
        let _ = writeln!(s, "{stem} IN NS {ns}");
        if a.has_a {
            let _ = writeln!(
                s,
                "{stem} IN A 203.0.{}.{}",
                stem.len() % 113,
                (stem.as_bytes()[4] as usize) % 250 + 1
            );
        }
        if a.has_mx {
            let _ = writeln!(s, "{stem} IN MX 10 mail.{stem}.com.");
        }
    }
    s
}

/// Renders the domainlists.io-style flat list. A slightly different
/// subset of the world than the zone (Table 6's two overlapping
/// sources): it includes expired homographs (no NS) and misses a sliver
/// of the benign corpus.
pub fn domain_list_text(
    benign: &[String],
    truth: &GroundTruth,
    include_benign_fraction_permille: u32,
    seed: u64,
) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::with_capacity(benign.len() * 20);
    s.push_str("# domainlists.io style export\n");
    for stem in benign {
        if rng.gen_range(0..1000u32) < include_benign_fraction_permille {
            let _ = writeln!(s, "{stem}.com");
        }
    }
    for h in &truth.homographs {
        let _ = writeln!(s, "{}", h.ace);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::{plant, HomographPlan};
    use crate::domains::reference_list;

    fn small_truth() -> (GroundTruth, HashMap<String, usize>) {
        let refs = reference_list(2_000);
        let ranks: HashMap<String, usize> =
            refs.iter().enumerate().map(|(i, r)| (r.clone(), i + 1)).collect();
        let homographs = plant(&refs, &HomographPlan::scaled(100), 3);
        let truth = assign(homographs, &ranks, &FunnelPlan::default(), 9);
        (truth, ranks)
    }

    #[test]
    fn funnel_proportions_hold() {
        let (truth, _) = small_truth();
        let n = truth.homographs.len();
        let with_ns = truth.assignments.values().filter(|a| a.has_ns).count();
        let with_a = truth.assignments.values().filter(|a| a.has_a).count();
        let active = truth.assignments.values().filter(|a| a.open_80 || a.open_443).count();
        let frac = |x: usize| x as f64 / n as f64;
        assert!((frac(with_ns) - 2294.0 / 3280.0).abs() < 0.03, "ns {}", frac(with_ns));
        assert!((frac(with_a) - 1909.0 / 3280.0).abs() < 0.03);
        assert!((frac(active) - 1647.0 / 3280.0).abs() < 0.03);
        // Funnel is monotone.
        assert!(with_ns >= with_a);
        assert!(with_a >= active);
    }

    #[test]
    fn categories_cover_table12() {
        let (truth, _) = small_truth();
        let mut parked = 0;
        let mut redirect = 0;
        for a in truth.assignments.values() {
            if a.open_80 {
                match &a.profile {
                    SiteProfile::Parked { .. } => parked += 1,
                    SiteProfile::Redirect { .. } => redirect += 1,
                    _ => {}
                }
            }
        }
        assert!(parked > 0);
        assert!(redirect > 0);
    }

    #[test]
    fn blacklists_have_paper_ratios() {
        let (truth, _) = small_truth();
        let n = truth.homographs.len() as f64;
        let hp = truth.blacklists[0].len() as f64;
        let gsb = truth.blacklists[1].len() as f64;
        let sym = truth.blacklists[2].len() as f64;
        assert!((hp / n - 242.0 / 3280.0).abs() < 0.02, "hp {}", hp / n);
        assert!(gsb < hp);
        assert!(sym <= gsb);
        assert!(sym >= 1.0);
    }

    #[test]
    fn stars_plant_gmail_phish_on_top() {
        let (mut truth, _) = small_truth();
        let stars = plant_resolution_stars(&mut truth);
        assert_eq!(stars.len(), 10);
        let top = truth
            .assignments
            .iter()
            .max_by_key(|(_, a)| a.resolutions)
            .map(|(d, _)| d.clone())
            .unwrap();
        assert_eq!(top, stars[0]); // gmaıl
        assert!(truth.blacklists[0].contains(&stars[0]));
    }

    #[test]
    fn zone_and_list_texts_parse() {
        let (truth, _) = small_truth();
        let benign: Vec<String> = (0..500).map(|i| format!("benign-{i}")).collect();
        let zone = zone_text(&benign, &truth, 989, 1);
        let (parsed, errors) = sham_dns::parse_lenient(&zone, "com");
        assert!(errors.is_empty(), "{errors:?}");
        assert!(parsed.records.len() > 500);

        let list = domain_list_text(&benign, &truth, 987, 2);
        let (names, bad) = sham_dns::parse_domain_list(&list);
        assert_eq!(bad, 0);
        assert!(names.len() > 500);
        // Every homograph appears in the list (including expired ones).
        let set: std::collections::HashSet<String> =
            names.iter().map(|d| d.as_ascii().to_string()).collect();
        for h in &truth.homographs {
            assert!(set.contains(&h.ace), "{} missing from list", h.ace);
        }
    }

    #[test]
    fn deterministic() {
        let (a, _) = small_truth();
        let (b, _) = small_truth();
        assert_eq!(a.homographs, b.homographs);
        assert_eq!(a.blacklists[0].len(), b.blacklists[0].len());
    }
}
