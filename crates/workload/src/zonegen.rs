//! Streaming synthetic TLD zone files at arbitrary byte scale.
//!
//! The batch scanner (`shamfinder scan-zone`) needs multi-hundred-MB
//! inputs with the real `.com` dump's shape: runs of records per owner,
//! a sprinkle of IDN lookalikes among overwhelmingly benign names, and
//! the occasional malformed line. [`write_synthetic_zone`] produces
//! exactly that, deterministically from a seed, writing straight to any
//! `Write` — it never holds the file in memory, so a 1 GB fixture
//! costs 1 GB of disk and nothing else.
//!
//! Lookalikes are Cyrillic single-substitution homographs of reference
//! stems ([`reference_list`]), so a detector
//! built over the default references finds them — the generated file
//! exercises the full detection path, not just the parser.

use crate::reference_list;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Write};

/// Knobs for one generated zone file.
#[derive(Debug, Clone)]
pub struct ZoneGenConfig {
    /// TLD the zone covers (`com`, `net`, …) — becomes `$ORIGIN`.
    pub tld: String,
    /// Stop once this many bytes are written (0 = use `target_records`).
    pub target_bytes: u64,
    /// Stop once this many record lines are written (0 = bytes only).
    pub target_records: u64,
    /// Per-mille of owners that are reference-stem lookalikes.
    pub homograph_permille: u32,
    /// Reference stems drawn from the top of `reference_list(n)`.
    pub reference_size: usize,
    /// Per-mille of lines that are deliberately malformed.
    pub malformed_permille: u32,
    /// Master seed — identical configs produce identical files.
    pub seed: u64,
}

impl Default for ZoneGenConfig {
    fn default() -> Self {
        ZoneGenConfig {
            tld: "com".to_string(),
            target_bytes: 8 << 20,
            target_records: 0,
            homograph_permille: 5,
            reference_size: 500,
            malformed_permille: 2,
            seed: 0x5CA4_203E,
        }
    }
}

/// What a generation run produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneGenStats {
    /// Bytes written (newlines included).
    pub bytes: u64,
    /// Total lines written.
    pub lines: u64,
    /// Well-formed record lines.
    pub records: u64,
    /// Distinct owner runs emitted.
    pub owners: u64,
    /// Owner runs that are planted homograph lookalikes.
    pub homographs: u64,
    /// Deliberately malformed lines.
    pub malformed: u64,
}

/// Cyrillic stand-ins the detection index resolves back to Latin — the
/// same confusions the paper's Table 8 cross-script class is built on.
const CYRILLIC_SUBS: &[(char, char)] = &[
    ('a', 'а'), // U+0430
    ('c', 'с'), // U+0441
    ('e', 'е'), // U+0435
    ('o', 'о'), // U+043E
    ('p', 'р'), // U+0440
    ('s', 'ѕ'), // U+0455
    ('x', 'х'), // U+0445
    ('y', 'у'), // U+0443
];

/// Substitutes one eligible character of `stem` (picked by `choice`)
/// with its Cyrillic lookalike; `None` if nothing is substitutable.
fn cyrillic_lookalike(stem: &str, choice: usize) -> Option<String> {
    let spots: Vec<(usize, char)> = stem
        .char_indices()
        .filter_map(|(i, ch)| {
            CYRILLIC_SUBS
                .iter()
                .find(|&&(lat, _)| lat == ch)
                .map(|&(_, cyr)| (i, cyr))
        })
        .collect();
    if spots.is_empty() {
        return None;
    }
    let (at, cyr) = spots[choice % spots.len()];
    let mut out = String::with_capacity(stem.len() + 1);
    out.push_str(&stem[..at]);
    out.push(cyr);
    // Reference stems are ASCII: the replaced character is one byte.
    out.push_str(&stem[at + 1..]);
    Some(out)
}

const SYLLABLES: &[&str] = &[
    "ba", "co", "da", "fe", "gi", "ho", "ju", "ka", "li", "mo", "nu", "pa", "qu", "ra", "si",
    "to", "ur", "va", "wi", "xo", "ya", "ze", "bran", "clo", "dru", "fla", "gre", "hol", "jun",
    "kra", "lum", "mer", "nor", "pol", "quin", "rev", "sta", "tru", "vex", "wol",
];

/// Writes one synthetic zone file, streaming. Returns what it wrote.
///
/// The layout mirrors real TLD dumps: `$ORIGIN`/`$TTL` header, then
/// owner runs of 1–3 records (NS + glue A/AAAA), with homographs and
/// malformed lines interleaved at the configured rates.
pub fn write_synthetic_zone<W: Write>(
    out: &mut W,
    cfg: &ZoneGenConfig,
) -> io::Result<ZoneGenStats> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let refs = reference_list(cfg.reference_size.max(1));
    let mut stats = ZoneGenStats::default();
    let mut line = String::with_capacity(128);

    let emit = |out: &mut W, stats: &mut ZoneGenStats, line: &str| -> io::Result<()> {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        stats.bytes += line.len() as u64 + 1;
        stats.lines += 1;
        Ok(())
    };

    line.clear();
    line.push_str("$ORIGIN ");
    line.push_str(&cfg.tld);
    line.push('.');
    emit(out, &mut stats, &line)?;
    emit(out, &mut stats, "$TTL 86400")?;

    let done = |stats: &ZoneGenStats| {
        (cfg.target_bytes > 0 && stats.bytes >= cfg.target_bytes)
            || (cfg.target_records > 0 && stats.records >= cfg.target_records)
            || (cfg.target_bytes == 0 && cfg.target_records == 0)
    };

    let mut serial: u64 = 0;
    while !done(&stats) {
        serial += 1;

        if rng.gen_range(0u32..1000) < cfg.malformed_permille {
            stats.malformed += 1;
            match rng.gen_range(0..3) {
                0 => emit(out, &mut stats, "corrupt IN A not-an-address")?,
                1 => emit(out, &mut stats, "??? truncated garbage ???")?,
                _ => emit(out, &mut stats, "weird IN SOA unsupported.example.")?,
            }
            continue;
        }

        // Owner: a planted lookalike or a unique benign name.
        let owner = if rng.gen_range(0u32..1000) < cfg.homograph_permille {
            let stem = &refs[rng.gen_range(0..refs.len())];
            match cyrillic_lookalike(stem, rng.gen_range(0..8)) {
                Some(uni) => match sham_punycode::ace::to_ascii(&uni) {
                    Ok(ace) => {
                        stats.homographs += 1;
                        ace
                    }
                    Err(_) => continue,
                },
                None => continue,
            }
        } else {
            let mut name = String::with_capacity(24);
            for _ in 0..rng.gen_range(2..5usize) {
                name.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
            }
            // Serial suffix keeps benign owners unique across the file.
            name.push_str(&serial.to_string());
            name
        };
        stats.owners += 1;

        // 1–3 records per owner, NS first — the real dump's shape.
        let runs = rng.gen_range(1..4usize);
        for r in 0..runs {
            line.clear();
            line.push_str(&owner);
            match r {
                0 => {
                    line.push_str("\tIN\tNS\tns");
                    line.push_str(&((serial % 4) + 1).to_string());
                    line.push_str(".registrar.example.");
                }
                1 => {
                    line.push_str("\tIN\tA\t192.0.2.");
                    line.push_str(&(serial % 250 + 1).to_string());
                }
                _ => {
                    line.push_str("\tIN\tAAAA\t2001:db8::");
                    line.push_str(&format!("{:x}", serial % 0xffff + 1));
                }
            }
            emit(out, &mut stats, &line)?;
            stats.records += 1;
        }
    }
    out.flush()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ZoneGenConfig {
        ZoneGenConfig {
            target_bytes: 64 << 10,
            homograph_permille: 30,
            malformed_permille: 5,
            seed: 42,
            ..ZoneGenConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_and_hits_the_byte_target() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let sa = write_synthetic_zone(&mut a, &small_cfg()).unwrap();
        let sb = write_synthetic_zone(&mut b, &small_cfg()).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.bytes >= 64 << 10);
        assert_eq!(sa.bytes, a.len() as u64);
        assert!(sa.homographs > 0, "no lookalikes planted");
        assert!(sa.malformed > 0, "no malformed lines planted");
    }

    #[test]
    fn generated_zone_parses_with_only_planted_garbage() {
        let mut buf = Vec::new();
        let stats = write_synthetic_zone(&mut buf, &small_cfg()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (zone, errors) = sham_dns::parse_lenient(&text, "com");
        assert_eq!(zone.records.len() as u64, stats.records);
        assert_eq!(errors.len() as u64, stats.malformed);
        assert!(zone
            .owner_names()
            .iter()
            .any(|d| d.is_idn()), "no IDN owners in generated zone");
    }

    #[test]
    fn record_target_stops_generation() {
        let cfg = ZoneGenConfig {
            target_bytes: 0,
            target_records: 100,
            malformed_permille: 0,
            ..ZoneGenConfig::default()
        };
        let mut buf = Vec::new();
        let stats = write_synthetic_zone(&mut buf, &cfg).unwrap();
        assert!(stats.records >= 100 && stats.records < 110);
    }

    #[test]
    fn lookalike_substitution_cycles_eligible_spots() {
        // "google": substitutable at o(1), o(2), e(5).
        assert_eq!(cyrillic_lookalike("google", 0).as_deref(), Some("g\u{43e}ogle"));
        assert_eq!(cyrillic_lookalike("google", 2).as_deref(), Some("googl\u{435}"));
        assert_eq!(cyrillic_lookalike("google", 3).as_deref(), Some("g\u{43e}ogle"));
        // Nothing substitutable: no lookalike.
        assert_eq!(cyrillic_lookalike("drhtml", 0), None);
    }
}
