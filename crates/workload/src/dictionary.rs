//! Embedded dictionaries for synthetic domain generation.
//!
//! Brand stems reproduce the domains the paper's tables name (Table 9:
//! myetherwallet, google, amazon, facebook, allstate; Table 11: gmail,
//! yahoo, youtube, döviz's target, …); the word lists generate the bulk
//! corpus; the per-language fragments generate benign IDNs with the
//! Table 7 language mix.

/// Brand stems in popularity order. The first entries mirror the Alexa
/// top domains the paper references; `myetherwallet` and `allstate` are
/// deliberately placed mid-list later (paper §6.1: ranks 7,400 / 5,148).
pub const BRANDS: &[&str] = &[
    "google", "youtube", "facebook", "baidu", "wikipedia", "amazon", "yahoo", "reddit",
    "gmail", "twitter", "instagram", "linkedin", "netflix", "microsoft", "apple", "ebay",
    "paypal", "binance", "dropbox", "github", "stackoverflow", "wordpress", "pinterest",
    "tumblr", "imgur", "spotify", "twitch", "whatsapp", "telegram", "signal", "zoom",
    "salesforce", "adobe", "oracle", "intel", "nvidia", "samsung", "sony", "canon",
    "walmart", "target", "costco", "ikea", "nike", "adidas", "zara", "uniqlo",
    "chase", "citibank", "wellsfargo", "hsbc", "barclays", "santander", "fidelity",
    "vanguard", "schwab", "robinhood", "coinbase", "kraken", "bitfinex", "doviz",
    "expansion", "shadbase", "peru",
];

/// Mid-popularity brands the paper's Table 9 shows being attacked despite
/// modest rank. They are inserted into the reference list at ranks past
/// 5,000.
pub const MID_RANK_BRANDS: &[&str] = &["allstate", "myetherwallet", "statefarm", "geico"];

/// Generic English words for bulk domain synthesis.
pub const WORDS: &[&str] = &[
    "alpha", "apex", "aqua", "arc", "atlas", "auto", "bay", "beacon", "bell", "best",
    "blue", "bolt", "book", "box", "bright", "bridge", "cap", "care", "cart", "cash",
    "cedar", "chart", "chef", "city", "clear", "cloud", "club", "coast", "code", "coin",
    "core", "craft", "creek", "crest", "crown", "cyber", "dash", "data", "dawn", "deal",
    "delta", "den", "desk", "dial", "digital", "dock", "dome", "dot", "dream", "drive",
    "eagle", "earth", "east", "echo", "edge", "elm", "ember", "engine", "estate", "ever",
    "fab", "fair", "farm", "fast", "fern", "field", "fin", "fire", "first", "fish",
    "fit", "flex", "flow", "fly", "forge", "fort", "fox", "fresh", "frontier", "fuel",
    "fund", "fusion", "galaxy", "gate", "gem", "gear", "glen", "globe", "gold", "grand",
    "green", "grid", "grove", "guide", "gulf", "handy", "harbor", "haven", "hawk", "head",
    "health", "hearth", "hill", "hive", "home", "hub", "hunt", "ice", "idea", "iron",
    "isle", "jade", "jet", "journey", "jump", "keen", "key", "kind", "king", "kit",
    "lab", "lake", "land", "lane", "leaf", "ledge", "light", "line", "link", "lion",
    "live", "local", "lodge", "logic", "loop", "lux", "magic", "main", "map", "mark",
    "market", "mart", "max", "meadow", "media", "mesh", "metro", "mill", "mind", "mine",
    "mint", "mist", "modern", "moon", "moss", "motion", "mount", "nest", "net", "next",
    "nimbus", "node", "north", "nova", "oak", "ocean", "office", "one", "open", "orbit",
    "orchid", "pace", "pack", "page", "palm", "park", "path", "peak", "pearl", "pine",
    "pixel", "plan", "play", "plaza", "point", "pond", "port", "power", "prime", "pro",
    "pulse", "pure", "quest", "quick", "rail", "rain", "range", "rapid", "raven", "ray",
    "reach", "real", "reef", "ridge", "ring", "rise", "river", "road", "rock", "root",
    "rose", "route", "royal", "run", "sage", "sail", "salt", "sand", "scout", "sea",
    "seed", "serve", "shade", "share", "shield", "shop", "shore", "silver", "site", "sky",
    "smart", "snow", "solar", "solid", "south", "spark", "sphere", "spring", "sprint",
    "star", "station", "steel", "stone", "store", "storm", "stream", "street", "studio",
    "summit", "sun", "surge", "swift", "tap", "team", "tech", "terra", "tide", "tiger",
    "time", "top", "torch", "tower", "trade", "trail", "train", "tree", "trend", "tribe",
    "true", "trust", "turbo", "unit", "up", "urban", "valley", "vault", "vector", "venture",
    "verge", "vibe", "view", "villa", "vine", "vision", "vista", "vital", "vivid", "wave",
    "way", "web", "well", "west", "whale", "wild", "wind", "wing", "wire", "wise",
    "wolf", "wood", "work", "world", "yard", "zen", "zone",
];

/// German words with umlauts/ß (drive Table 7's German row — they are
/// IDNs precisely because of the diacritics).
pub const GERMAN_WORDS: &[&str] = &[
    "münchen", "köln", "düsseldorf", "nürnberg", "würzburg", "bücher", "möbel", "schön",
    "grün", "über", "für", "straße", "größe", "hörbuch", "käse", "göttingen", "lübeck",
    "münster", "züge", "gärten", "häuser", "türen", "söhne", "flüge", "bäder",
];

/// Turkish words carrying Turkish-specific letters (ğ/ş/ı/ç) so a
/// marker-based classifier can tell them from German umlaut words.
pub const TURKISH_WORDS: &[&str] = &[
    "şehir", "ığdır", "çiçek", "eğitim", "sağlık", "alışveriş", "ilaç", "öğrenci",
    "kitapçı", "güneş", "bahçe", "çarşı", "düğün", "başkent", "yıldız", "kapı", "şarkı",
];

/// French words with accents.
pub const FRENCH_WORDS: &[&str] = &[
    "café", "élysée", "hôtel", "crème", "forêt", "château", "école", "théâtre", "marché",
    "santé", "beauté", "cinéma", "musée", "légume", "pâtisserie",
];

/// Spanish words with accents.
pub const SPANISH_WORDS: &[&str] = &[
    "españa", "señor", "niño", "montaña", "mañana", "corazón", "música", "fútbol",
    "camión", "jardín", "pequeño", "compañía",
];

/// Vietnamese words.
pub const VIETNAMESE_WORDS: &[&str] =
    &["việtnam", "hànội", "sàigòn", "càphê", "dulịch", "ẩmthực", "giáodục", "sứckhỏe"];

/// Russian words (Cyrillic).
pub const RUSSIAN_WORDS: &[&str] = &[
    "москва", "россия", "новости", "погода", "работа", "магазин", "книги", "музыка",
];

/// Arabic words.
pub const ARABIC_WORDS: &[&str] = &["السعودية", "مصر", "اخبار", "سوق", "تعليم", "صحة"];

/// Thai words.
pub const THAI_WORDS: &[&str] = &["ไทยแลนด์", "กรุงเทพ", "ข่าว", "ตลาด"];

/// Hebrew words.
pub const HEBREW_WORDS: &[&str] = &["ישראל", "חדשות", "שוק"];

/// Common Hiragana/Katakana fragments for Japanese IDNs.
pub const KANA_FRAGMENTS: &[&str] = &[
    "さくら", "とうきょう", "かいしゃ", "オンライン", "ショップ", "ゲーム", "ニュース",
    "りょこう", "ほけん", "ぐるめ",
];

/// Common Han fragments for Japanese IDNs (mixed with kana).
pub const JA_HAN_FRAGMENTS: &[&str] = &["東京", "大阪", "会社", "旅行", "銀行", "大学"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brand_lists_contain_paper_targets() {
        assert!(BRANDS.contains(&"google"));
        assert!(BRANDS.contains(&"amazon"));
        assert!(BRANDS.contains(&"facebook"));
        assert!(BRANDS.contains(&"gmail"));
        assert!(BRANDS.contains(&"doviz"));
        assert!(MID_RANK_BRANDS.contains(&"myetherwallet"));
        assert!(MID_RANK_BRANDS.contains(&"allstate"));
    }

    #[test]
    fn words_are_ldh_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for w in WORDS {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(seen.insert(w), "duplicate word {w}");
        }
        assert!(WORDS.len() > 250);
    }

    #[test]
    fn language_words_are_actually_idn_material() {
        for w in GERMAN_WORDS.iter().chain(TURKISH_WORDS).chain(FRENCH_WORDS) {
            assert!(!w.is_ascii(), "{w} would not be an IDN");
        }
        for w in RUSSIAN_WORDS.iter().chain(ARABIC_WORDS).chain(THAI_WORDS) {
            assert!(!w.is_ascii());
        }
    }

    #[test]
    fn language_words_identify_correctly() {
        use sham_langid::{identify, Language};
        for w in GERMAN_WORDS {
            assert_eq!(identify(w).language, Language::German, "{w}");
        }
        for w in TURKISH_WORDS {
            assert_eq!(identify(w).language, Language::Turkish, "{w}");
        }
        for w in KANA_FRAGMENTS {
            assert_eq!(identify(w).language, Language::Japanese, "{w}");
        }
    }
}
