//! Cross-crate integration: the DNS wire path end to end (detect a
//! homograph → query a real UDP DNS server about it), TR39 restriction
//! levels against the detection framework, and per-TLD registry policy.

use shamfinder::confusables::{restriction_level, whole_script_confusable, RestrictionLevel};
use shamfinder::core::IdnTable;
use shamfinder::dns::{udp_query, RecordType, SimResolver, UdpDnsServer};
use shamfinder::prelude::*;
use shamfinder::unicode::Script;
use std::time::Duration;

fn small_db() -> (SimCharDb, UcDatabase) {
    let font = SynthUnifont::v12();
    let simchar = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db;
    (simchar, UcDatabase::embedded())
}

#[test]
fn detect_then_resolve_over_real_udp() {
    // 1. Detect the homograph.
    let (simchar, uc) = small_db();
    let fw = Framework::new(simchar, uc, vec!["google".to_string()], "com");
    let spoof = DomainName::parse("gооgle.com").unwrap();
    let report = fw.run(std::slice::from_ref(&spoof));
    assert_eq!(report.detections.len(), 1);
    let ace = report.detections[0].idn_ascii.clone();

    // 2. Stand up a DNS server whose zone contains the homograph's
    //    records, exactly like the paper's §6.1 NS/A liveness checks.
    let zone = shamfinder::dns::parse(
        &format!(
            "$ORIGIN com.\n{} IN NS ns1.parkingcrew.net.\n{} IN A 203.0.113.9\n",
            ace.trim_end_matches(".com"),
            ace.trim_end_matches(".com"),
        ),
        "com",
    )
    .unwrap();
    let server = UdpDnsServer::spawn(SimResolver::new([zone])).unwrap();

    // 3. Query over the wire.
    let name = DomainName::parse(&ace).unwrap();
    let ns = udp_query(server.addr(), &name, RecordType::Ns, Duration::from_millis(800)).unwrap();
    assert_eq!(ns.answers.len(), 1);
    let a = udp_query(server.addr(), &name, RecordType::A, Duration::from_millis(800)).unwrap();
    assert_eq!(a.answers.len(), 1);

    // 4. The NS evidence classifies the site as parked.
    let ns_host = match &ns.answers[0].data {
        shamfinder::dns::RecordData::Ns(h) => h.as_ascii().to_string(),
        other => panic!("expected NS, got {other:?}"),
    };
    assert!(shamfinder::web::is_parking_ns(&ns_host));
}

#[test]
fn restriction_levels_align_with_detections() {
    let (simchar, uc) = small_db();
    let fw = Framework::new(
        simchar,
        uc,
        vec!["google".to_string(), "facebook".to_string()],
        "com",
    );

    // The mixed-script homograph is Minimally Restrictive (Latin +
    // Cyrillic) — browsers degrade it, and we detect it.
    let mixed = DomainName::parse("gооgle.com").unwrap();
    assert_eq!(
        restriction_level("gооgle"),
        RestrictionLevel::MinimallyRestrictive
    );
    assert_eq!(fw.run(&[mixed]).detections.len(), 1);

    // The accent homograph is Single Script — browsers display it, and
    // only the homoglyph DB catches it. This is the paper's §7.2 gap.
    let accent = DomainName::parse("facébook.com").unwrap();
    assert_eq!(restriction_level("facébook"), RestrictionLevel::SingleScript);
    assert_eq!(fw.run(&[accent]).detections.len(), 1);
}

#[test]
fn whole_script_confusables_complement_mixed_script_rules() {
    let uc = UcDatabase::embedded();
    // A single-script Cyrillic string built entirely from Latin
    // lookalikes: invisible to mixed-script rules, caught by the
    // whole-script test.
    assert_eq!(restriction_level("сосо"), RestrictionLevel::SingleScript);
    assert!(whole_script_confusable(&uc, "сосо", Script::Latin));
}

#[test]
fn registry_tables_bound_the_attack_surface() {
    let font = SynthUnifont::v12();
    let result = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    );
    let db = HomoglyphDb::new(result.db, UcDatabase::embedded());

    let com = IdnTable::com().homograph_surface(&db, "paypal");
    let de = IdnTable::de().homograph_surface(&db, "paypal");
    let jp = IdnTable::jp().homograph_surface(&db, "paypal");
    assert!(com > de, "com {com} !> de {de}");
    assert!(de > 0, "Latin accents are registrable under .de");
    assert_eq!(jp, 0, ".jp admits no Latin homoglyph at all");
}

#[test]
fn banner_rendering_shows_the_deception() {
    let font = SynthUnifont::v12();
    let real = shamfinder::glyph::render_banner(&font, "paypal.com");
    let spoof = shamfinder::glyph::render_banner(&font, "pаypal.com"); // Cyrillic а
    assert_eq!(real.delta(&spoof), 0, "the address bars are identical");

    let honest = shamfinder::glyph::render_banner(&font, "paypal2.com");
    assert!(real.delta(&honest) > 50);
}
