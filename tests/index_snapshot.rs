//! Serialized prebuilt index: building the flat pair index from
//! source, snapshotting it to disk, and loading it back must be
//! invisible to detection — bit-identical reports — and every corrupted
//! or mismatched snapshot must be rejected before it can reach the
//! detector. This is the CI "index snapshot roundtrip" smoke: it
//! exercises the exact serve-path sequence (build → serialize → load →
//! detect).

use shamfinder::confusables::UcDatabase;
use shamfinder::core::Framework;
use shamfinder::glyph::SynthUnifont;
use shamfinder::punycode::DomainName;
use shamfinder::simchar::{build, BuildConfig, FlatPairIndex, HomoglyphDb, Repertoire};

fn simchar() -> shamfinder::simchar::SimCharDb {
    let font = SynthUnifont::v12();
    build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
                "Armenian",
            ]),
            ..BuildConfig::default()
        },
    )
    .db
}

fn corpus() -> Vec<DomainName> {
    [
        "xn--ggle-55da.com",   // gооgle (Cyrillic о)
        "xn--ggle-vifa.com",   // gօօgle (Armenian օ)
        "xn--facbook-dya.com", // facébook
        "xn--pypal-4ve.com",   // pаypal
        "ordinary.com",
        "xn--fiq228c.com", // 中文 — IDN, not a homograph
    ]
    .iter()
    .map(|s| DomainName::parse(s).unwrap())
    .collect()
}

const REFS: &[&str] = &["google", "facebook", "paypal", "amazon"];

#[test]
fn snapshot_load_detects_bit_identically_to_source_build() {
    let simchar = simchar();
    let uc = UcDatabase::embedded();

    // Serve path: build once, snapshot to disk…
    let built = HomoglyphDb::new(simchar.clone(), uc.clone());
    let path = std::env::temp_dir().join(format!(
        "shamfinder-index-{}.bin",
        std::process::id()
    ));
    {
        let mut file = std::fs::File::create(&path).expect("create snapshot");
        built.flat().write_to(&mut file).expect("serialize index");
    }

    // …then load the prebuilt index, skipping construction entirely.
    let loaded_flat = {
        let mut file = std::fs::File::open(&path).expect("open snapshot");
        FlatPairIndex::read_from(&mut file).expect("deserialize index")
    };
    std::fs::remove_file(&path).ok();
    assert_eq!(&loaded_flat, built.flat(), "loaded index differs from built");
    let loaded = HomoglyphDb::from_prebuilt(simchar.clone(), uc.clone(), loaded_flat)
        .expect("matching sources must mount");

    // Identical detections — the whole report, order included.
    let refs = || REFS.iter().map(|s| s.to_string());
    let from_build = Framework::new(simchar.clone(), uc.clone(), refs(), "com");
    let mut from_snapshot = Framework::with_shared_index(
        shamfinder::core::DetectionIndex::shared(loaded, refs()),
        "com",
    )
    .session();

    let corpus = corpus();
    let batch_report = from_build.run(&corpus);
    assert_eq!(batch_report.detections.len(), 4);
    from_snapshot.push_domains(&corpus);
    assert_eq!(from_snapshot.into_report(), batch_report);
}

#[test]
fn corrupted_and_mismatched_snapshots_are_rejected() {
    let built = HomoglyphDb::new(simchar(), UcDatabase::embedded());
    let mut bytes = Vec::new();
    built.flat().write_to(&mut bytes).expect("serialize index");

    // Wrong magic: a file that is not a snapshot at all.
    let mut wrong_magic = bytes.clone();
    wrong_magic[..8].copy_from_slice(b"NOTANIDX");
    let err = FlatPairIndex::read_from(&mut wrong_magic.as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("magic"), "{err}");

    // Wrong version: a snapshot from a future format.
    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&7u32.to_le_bytes());
    let err = FlatPairIndex::read_from(&mut wrong_version.as_slice()).unwrap_err();
    assert!(err.to_string().contains("version 7"), "{err}");

    // A single flipped bit in the fingerprint fields (12..28) or the
    // payload (from offset 44) fails the checksum — corruption is
    // reported as corruption, never as a staleness mismatch.
    for at in [12usize, 27, 44, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x10;
        let err = FlatPairIndex::read_from(&mut corrupted.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "offset {at}");
    }

    // Truncation anywhere is an error, never a partial index.
    for cut in [0usize, 7, 11, 27, 43, bytes.len() - 1] {
        assert!(
            FlatPairIndex::read_from(&mut &bytes[..cut]).is_err(),
            "truncated at {cut}"
        );
    }
}

#[test]
fn stale_snapshots_are_rejected_on_mount() {
    // Snapshot the v12-font index…
    let uc = UcDatabase::embedded();
    let built = HomoglyphDb::new(simchar(), uc.clone());
    let mut bytes = Vec::new();
    built.flat().write_to(&mut bytes).expect("serialize index");

    // …then try to mount it over a *different* SimChar build (a
    // stricter θ — exactly what a font or threshold upgrade produces).
    // The recorded source fingerprint no longer matches and the mount
    // must fail descriptively instead of serving the wrong pair
    // universe.
    let font = SynthUnifont::v12();
    let retuned_simchar = build(
        &font,
        &BuildConfig {
            theta: 2,
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
                "Armenian",
            ]),
            ..BuildConfig::default()
        },
    )
    .db;
    let loaded = FlatPairIndex::read_from(&mut bytes.as_slice()).expect("well-formed bytes");
    let err = HomoglyphDb::from_prebuilt(retuned_simchar, uc.clone(), loaded).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("stale"), "{err}");
    assert!(err.to_string().contains("SimChar/font build"), "{err}");

    // The same bytes still mount fine over the matching sources.
    let loaded = FlatPairIndex::read_from(&mut bytes.as_slice()).expect("well-formed bytes");
    assert!(HomoglyphDb::from_prebuilt(simchar(), uc, loaded).is_ok());
}
