//! Serialized prebuilt index: building the flat pair index from
//! source, snapshotting it to disk, and loading it back must be
//! invisible to detection — bit-identical reports — and every corrupted
//! or mismatched snapshot must be rejected before it can reach the
//! detector. This is the CI "index snapshot roundtrip" smoke: it
//! exercises the exact serve-path sequence (build → serialize → load →
//! detect).

use proptest::prelude::*;
use shamfinder::confusables::UcDatabase;
use shamfinder::core::{DetectionIndex, Framework};
use shamfinder::glyph::SynthUnifont;
use shamfinder::punycode::DomainName;
use shamfinder::simchar::{build, BuildConfig, FlatPairIndex, HomoglyphDb, Repertoire};

fn simchar() -> shamfinder::simchar::SimCharDb {
    let font = SynthUnifont::v12();
    build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
                "Armenian",
            ]),
            ..BuildConfig::default()
        },
    )
    .db
}

fn corpus() -> Vec<DomainName> {
    [
        "xn--ggle-55da.com",   // gооgle (Cyrillic о)
        "xn--ggle-vifa.com",   // gօօgle (Armenian օ)
        "xn--facbook-dya.com", // facébook
        "xn--pypal-4ve.com",   // pаypal
        "ordinary.com",
        "xn--fiq228c.com", // 中文 — IDN, not a homograph
    ]
    .iter()
    .map(|s| DomainName::parse(s).unwrap())
    .collect()
}

const REFS: &[&str] = &["google", "facebook", "paypal", "amazon"];

#[test]
fn snapshot_load_detects_bit_identically_to_source_build() {
    let simchar = simchar();
    let uc = UcDatabase::embedded();

    // Serve path: build once, snapshot to disk…
    let built = HomoglyphDb::new(simchar.clone(), uc.clone());
    let path = std::env::temp_dir().join(format!(
        "shamfinder-index-{}.bin",
        std::process::id()
    ));
    {
        let mut file = std::fs::File::create(&path).expect("create snapshot");
        built.flat().write_to(&mut file).expect("serialize index");
    }

    // …then load the prebuilt index, skipping construction entirely.
    let loaded_flat = {
        let mut file = std::fs::File::open(&path).expect("open snapshot");
        FlatPairIndex::read_from(&mut file).expect("deserialize index")
    };
    std::fs::remove_file(&path).ok();
    assert_eq!(&loaded_flat, built.flat(), "loaded index differs from built");
    let loaded = HomoglyphDb::from_prebuilt(simchar.clone(), uc.clone(), loaded_flat)
        .expect("matching sources must mount");

    // Identical detections — the whole report, order included.
    let refs = || REFS.iter().map(|s| s.to_string());
    let from_build = Framework::new(simchar.clone(), uc.clone(), refs(), "com");
    let mut from_snapshot = Framework::with_shared_index(
        shamfinder::core::DetectionIndex::shared(loaded, refs()),
        "com",
    )
    .session();

    let corpus = corpus();
    let batch_report = from_build.run(&corpus);
    assert_eq!(batch_report.detections.len(), 4);
    from_snapshot.push_domains(&corpus);
    assert_eq!(from_snapshot.into_report(), batch_report);
}

#[test]
fn corrupted_and_mismatched_snapshots_are_rejected() {
    let built = HomoglyphDb::new(simchar(), UcDatabase::embedded());
    let mut bytes = Vec::new();
    built.flat().write_to(&mut bytes).expect("serialize index");

    // Wrong magic: a file that is not a snapshot at all.
    let mut wrong_magic = bytes.clone();
    wrong_magic[..8].copy_from_slice(b"NOTANIDX");
    let err = FlatPairIndex::read_from(&mut wrong_magic.as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("magic"), "{err}");

    // Wrong version: a snapshot from a future format.
    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&7u32.to_le_bytes());
    let err = FlatPairIndex::read_from(&mut wrong_version.as_slice()).unwrap_err();
    assert!(err.to_string().contains("version 7"), "{err}");

    // A single flipped bit in the fingerprint fields (12..28) or the
    // payload (from offset 44) fails the checksum — corruption is
    // reported as corruption, never as a staleness mismatch.
    for at in [12usize, 27, 44, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x10;
        let err = FlatPairIndex::read_from(&mut corrupted.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "offset {at}");
    }

    // Truncation anywhere is an error, never a partial index.
    for cut in [0usize, 7, 11, 27, 43, bytes.len() - 1] {
        assert!(
            FlatPairIndex::read_from(&mut &bytes[..cut]).is_err(),
            "truncated at {cut}"
        );
    }
}

#[test]
fn stale_snapshots_are_rejected_on_mount() {
    // Snapshot the v12-font index…
    let uc = UcDatabase::embedded();
    let built = HomoglyphDb::new(simchar(), uc.clone());
    let mut bytes = Vec::new();
    built.flat().write_to(&mut bytes).expect("serialize index");

    // …then try to mount it over a *different* SimChar build (a
    // stricter θ — exactly what a font or threshold upgrade produces).
    // The recorded source fingerprint no longer matches and the mount
    // must fail descriptively instead of serving the wrong pair
    // universe.
    let font = SynthUnifont::v12();
    let retuned_simchar = build(
        &font,
        &BuildConfig {
            theta: 2,
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
                "Armenian",
            ]),
            ..BuildConfig::default()
        },
    )
    .db;
    let loaded = FlatPairIndex::read_from(&mut bytes.as_slice()).expect("well-formed bytes");
    let err = HomoglyphDb::from_prebuilt(retuned_simchar, uc.clone(), loaded).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("stale"), "{err}");
    assert!(err.to_string().contains("SimChar/font build"), "{err}");

    // The same bytes still mount fine over the matching sources.
    let loaded = FlatPairIndex::read_from(&mut bytes.as_slice()).expect("well-formed bytes");
    assert!(HomoglyphDb::from_prebuilt(simchar(), uc, loaded).is_ok());
}

// ---------------------------------------------------------------------------
// v3 full-index snapshots (reference section)
// ---------------------------------------------------------------------------

/// A deliberately tiny full-index snapshot (one-pair SimChar, empty UC,
/// three references) so exhaustive per-offset corruption sweeps stay
/// fast, plus the component databases needed to attempt a mount.
fn tiny_full_snapshot() -> (shamfinder::simchar::SimCharDb, UcDatabase, Vec<u8>) {
    use shamfinder::simchar::Pair;
    let simchar = shamfinder::simchar::SimCharDb::from_pairs(
        vec![Pair { a: 'o' as u32, b: 0x043E, delta: 1 }],
        4,
    );
    let uc = UcDatabase::from_mappings(Vec::new());
    let db = HomoglyphDb::new(simchar.clone(), uc.clone());
    let index =
        DetectionIndex::new(db, ["google", "paypal", "oo"].map(String::from).to_vec());
    let mut bytes = Vec::new();
    index.write_snapshot(&mut bytes).expect("serialize full index");
    (simchar, uc, bytes)
}

#[test]
fn full_index_snapshot_round_trips_and_checks_the_reference_list() {
    let simchar = simchar();
    let uc = UcDatabase::embedded();
    let db = HomoglyphDb::new(simchar.clone(), uc.clone());
    let refs = || REFS.iter().map(|s| s.to_string());
    let built = shamfinder::core::DetectionIndex::shared(db, refs());

    let mut bytes = Vec::new();
    built.write_snapshot(&mut bytes).expect("serialize full index");
    let mounted =
        DetectionIndex::from_snapshot(&mut bytes.as_slice(), simchar.clone(), uc.clone())
            .expect("mount full index");

    // The three-way staleness check: font build and confusables
    // revision are fingerprint-verified by the mount itself; the
    // reference list is pinned by its digest.
    assert_eq!(mounted.reference_digest(), built.reference_digest());
    mounted.expect_references(REFS.iter().copied()).expect("same list");
    let err = mounted.expect_references(["google", "facebook"]).unwrap_err();
    assert!(err.to_string().contains("reference list"), "{err}");

    // Identical detections, order included, batch and streaming alike.
    let corpus = corpus();
    let from_build = Framework::with_shared_index(built, "com").run(&corpus);
    let mut session = Framework::with_shared_index(
        std::sync::Arc::new(mounted),
        "com",
    )
    .session();
    session.push_domains(&corpus);
    assert_eq!(session.into_report(), from_build);
    assert_eq!(from_build.detections.len(), 4);

    // A pair-only snapshot is not a full index: the mount must say so.
    let pair_only = {
        let mut out = Vec::new();
        let db = HomoglyphDb::new(simchar.clone(), uc.clone());
        db.flat().write_to(&mut out).expect("serialize pair index");
        out
    };
    let err =
        DetectionIndex::from_snapshot(&mut pair_only.as_slice(), simchar, uc).unwrap_err();
    assert!(err.to_string().contains("no reference section"), "{err}");
}

#[test]
fn v2_snapshots_without_reference_section_still_load() {
    // Byte-wise FNV-1a — the v2 checksum (v3 switched to word-chunked).
    fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    let built = HomoglyphDb::new(simchar(), UcDatabase::embedded());
    let mut v3 = Vec::new();
    built.flat().write_to(&mut v3).expect("serialize index");

    // Downgrade the v3 bytes to the v2 layout: drop the two extra
    // header fields (bytes 44..60), stamp version 2, reseal with the
    // byte-wise checksum over fingerprint + payload.
    let mut v2 = Vec::with_capacity(v3.len() - 16);
    v2.extend_from_slice(&v3[..44]);
    v2.extend_from_slice(&v3[60..]);
    v2[8..12].copy_from_slice(&2u32.to_le_bytes());
    let checksum = fnv1a(fnv1a(0xcbf2_9ce4_8422_2325, &v2[12..28]), &v2[44..]);
    v2[36..44].copy_from_slice(&checksum.to_le_bytes());

    // The old format still loads, bit-identical to the built index…
    let loaded = FlatPairIndex::read_from(&mut v2.as_slice()).expect("v2 loads");
    assert_eq!(&loaded, built.flat(), "v2 load differs from built");
    // …and the section-aware reader reports "no reference section".
    let (loaded, section) =
        FlatPairIndex::read_with_section(&mut v2.as_slice()).expect("v2 loads");
    assert_eq!(&loaded, built.flat());
    assert!(section.is_none());
}

#[test]
fn full_snapshot_rejects_truncation_at_every_offset() {
    let (simchar, uc, bytes) = tiny_full_snapshot();
    // Sanity: the intact bytes mount.
    DetectionIndex::from_snapshot(&mut bytes.as_slice(), simchar.clone(), uc.clone())
        .expect("intact snapshot mounts");

    let payload_len =
        u64::from_le_bytes(bytes[28..36].try_into().unwrap()) as usize;
    let section_start = 60 + payload_len;
    for cut in 0..bytes.len() {
        let err = DetectionIndex::from_snapshot(
            &mut &bytes[..cut],
            simchar.clone(),
            uc.clone(),
        )
        .expect_err("truncated snapshot must not mount");
        // Cuts inside the reference section convict it by name.
        if cut > section_start {
            assert!(err.to_string().contains("reference section"), "cut {cut}: {err}");
        }
    }
}

proptest! {
    /// Seeded single-bit flips anywhere in a full-index snapshot:
    /// every flip is rejected (checksums cover both halves, framing
    /// errors cover the header) — an error, never a panic, and flips
    /// landing in the reference section name it.
    #[test]
    fn full_snapshot_rejects_any_bit_flip(at in 0usize..usize::MAX, bit in 0u8..8) {
        let (simchar, uc, bytes) = tiny_full_snapshot();
        let at = at % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 1 << bit;
        let err = DetectionIndex::from_snapshot(
            &mut corrupted.as_slice(),
            simchar,
            uc,
        )
        .expect_err("corrupted snapshot must not mount");
        let payload_len =
            u64::from_le_bytes(bytes[28..36].try_into().unwrap()) as usize;
        if at >= 60 + payload_len {
            prop_assert!(
                err.to_string().contains("reference section"),
                "flip at {at}: {err}"
            );
        }
    }
}

#[test]
fn mounted_index_detects_bit_identically_at_scale() {
    use shamfinder::core::{DbSelection, Detector, DetectorSession, Indexing};
    use std::sync::Arc;

    // The acceptance corpus: the 10k-stem reference list and a 20k-IDN
    // feed, half single-substitution lookalikes, half benign IDN noise
    // (the same shape as the bench corpus).
    let references = shamfinder::workload::reference_list(10_000);
    let corpus: Vec<(String, String)> = (0..20_000)
        .map(|i| {
            let stem = if i % 2 == 0 {
                let target = &references[(i / 2) % 500];
                let len = target.chars().count().max(1);
                target
                    .chars()
                    .enumerate()
                    .map(|(pos, c)| {
                        if pos == i % len {
                            match c {
                                'a' => 'а',
                                'e' => 'е',
                                'o' => 'о',
                                'c' => 'с',
                                'p' => 'р',
                                other => other,
                            }
                        } else {
                            c
                        }
                    })
                    .collect::<String>()
            } else {
                format!("münchen-shop-{i}")
            };
            let ace = shamfinder::punycode::ace::to_ascii(&stem).unwrap();
            (stem, format!("{ace}.com"))
        })
        .collect();

    let simchar = simchar();
    let uc = UcDatabase::embedded();
    let built = shamfinder::core::DetectionIndex::shared(
        HomoglyphDb::new(simchar.clone(), uc.clone()),
        references.iter().cloned(),
    );
    let mut bytes = Vec::new();
    built.write_snapshot(&mut bytes).expect("serialize full index");
    let mounted = Arc::new(
        DetectionIndex::from_snapshot(&mut bytes.as_slice(), simchar, uc)
            .expect("mount full index"),
    );
    mounted
        .expect_references(references.iter().map(String::as_str))
        .expect("same reference list");

    // The reference churn both sessions will replay: a small
    // add/remove wave, then a mass removal that crosses the
    // compaction threshold (dead must outnumber live).
    let wave_add: Vec<String> = (0..50).map(|i| format!("zz-new-{i}")).collect();
    let wave_remove: Vec<String> = references[..100].to_vec();
    let mass_remove: Vec<String> = references[100..6_000].to_vec();

    for threads in [1usize, 4] {
        let _force = rayon::ThreadOverride::new(threads);

        // Batch detection: bit-identical reports, all strategies.
        let d_built = Detector::from_index(Arc::clone(&built));
        let d_mounted = Detector::from_index(Arc::clone(&mounted));
        for indexing in [Indexing::CanonicalClosure, Indexing::LengthBucket] {
            let a = d_built.detect(&corpus, DbSelection::Union, indexing);
            let b = d_mounted.detect(&corpus, DbSelection::Union, indexing);
            assert!(!a.is_empty(), "corpus must produce detections");
            assert_eq!(a, b, "threads {threads}, {indexing:?}");
        }

        // Streaming with reference-diff churn and forced compaction.
        let mut s_built = DetectorSession::new(Arc::clone(&built), "com");
        let mut s_mounted = DetectorSession::new(Arc::clone(&mounted), "com");
        let halves = corpus.split_at(corpus.len() / 2);
        for s in [&mut s_built, &mut s_mounted] {
            s.apply_reference_diff(&wave_add, &wave_remove);
            s.push_idns(halves.0);
            s.apply_reference_diff(&[], &mass_remove);
            s.push_idns(halves.1);
        }
        assert_eq!(
            s_built.overlay_tombstones(),
            s_mounted.overlay_tombstones(),
            "threads {threads}"
        );
        assert_eq!(s_built.overlay_tombstones(), 0, "mass removal must compact");
        assert_eq!(s_built.into_report(), s_mounted.into_report(), "threads {threads}");
    }
}
