//! scan-zone ≡ batch replay: the chunked, overlapped-I/O [`ZoneScanner`]
//! over a generated multi-TLD zone must be *detection-identical* to an
//! unchunked line-by-line replay through [`ZoneStreamParser::scan_line`]
//! plus the same dedup/blacklist pre-stage feeding a plain
//! [`SessionRouter`] — same router report, same per-TLD accounting —
//! at every chunk size and thread count. Truncating the input at an
//! arbitrary byte offset or corrupting a byte mid-stream must never
//! panic and must keep the `records_accounted` books closed (and the
//! two models still agree on the damaged input).

use proptest::prelude::*;
use shamfinder::core::{
    DetectionIndex, RouterReport, ScanConfig, SessionRouter, TldScanStats, ZoneScanner,
};
use shamfinder::dns::zone::{ZoneScan, ZoneStreamParser};
use shamfinder::web::Blacklist;
use shamfinder::workload::{reference_list, write_synthetic_zone, ZoneGenConfig};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

/// Reference stems shared by the generator and the detection index, so
/// the planted Cyrillic lookalikes are actually detectable.
const REFERENCE_SIZE: usize = 60;

/// One shared index for every case — the SimChar build is the expensive
/// part and the index is immutable.
fn index() -> &'static Arc<DetectionIndex> {
    static INDEX: OnceLock<Arc<DetectionIndex>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let font = shamfinder::glyph::SynthUnifont::v12();
        let result = shamfinder::simchar::build(
            &font,
            &shamfinder::simchar::BuildConfig {
                repertoire: shamfinder::simchar::Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Cyrillic",
                ]),
                ..shamfinder::simchar::BuildConfig::default()
            },
        );
        DetectionIndex::shared(
            shamfinder::simchar::HomoglyphDb::new(
                result.db,
                shamfinder::confusables::UcDatabase::embedded(),
            ),
            reference_list(REFERENCE_SIZE),
        )
    })
}

fn gen_zone(tld: &str, seed: u64, target_bytes: u64, homographs: u32, malformed: u32) -> Vec<u8> {
    let cfg = ZoneGenConfig {
        tld: tld.to_string(),
        target_bytes,
        target_records: 0,
        homograph_permille: homographs,
        reference_size: REFERENCE_SIZE,
        malformed_permille: malformed,
        seed,
    };
    let mut buf = Vec::new();
    write_synthetic_zone(&mut buf, &cfg).expect("Vec<u8> writes cannot fail");
    buf
}

/// The lines the scanner's chunk splitter yields for `data`: split on
/// `\n`, no phantom empty line after a trailing newline, a final
/// unterminated line still counts.
fn byte_lines(data: &[u8]) -> Vec<&[u8]> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut lines: Vec<&[u8]> = data.split(|&b| b == b'\n').collect();
    if data.last() == Some(&b'\n') {
        lines.pop();
    }
    lines
}

/// The reference model: one unchunked, single-threaded-I/O pass per
/// file through `scan_line` with the identical dedup-window, blacklist
/// and accounting rules, feeding the router domain by domain. The
/// dedup window is keyed by the owner *string* (not its hash), pinning
/// the intended semantics of the scanner's hash window.
fn replay(
    inputs: &[(&str, &[u8])],
    dedup_window: usize,
    blacklists: &[Blacklist],
) -> (RouterReport, BTreeMap<String, TldScanStats>) {
    let mut router = SessionRouter::new(Arc::clone(index())).with_batch_capacity(97);
    let mut per_tld: BTreeMap<String, TldScanStats> = BTreeMap::new();
    let mut window: VecDeque<String> = VecDeque::new();
    let mut window_set: HashSet<String> = HashSet::new();

    for (tld, data) in inputs {
        let stats = per_tld.entry(tld.to_string()).or_default();
        stats.bytes += data.len() as u64;
        let mut parser = ZoneStreamParser::new(tld);
        for raw in byte_lines(data) {
            stats.lines += 1;
            let raw = match raw.split_last() {
                Some((b'\r', head)) => head,
                _ => raw,
            };
            let text = match std::str::from_utf8(raw) {
                Ok(t) => t,
                Err(_) => {
                    stats.quarantined += 1;
                    let _ = parser.scan_line("");
                    continue;
                }
            };
            match parser.scan_line(text) {
                Ok(ZoneScan::Skip) => {}
                Err(_) => stats.quarantined += 1,
                Ok(ZoneScan::Record { owner, new_owner }) => {
                    stats.records += 1;
                    if !new_owner {
                        stats.dedup_consecutive += 1;
                        continue;
                    }
                    if dedup_window > 0 {
                        let key = owner.as_ascii().to_string();
                        if window_set.contains(&key) {
                            stats.dedup_window += 1;
                            continue;
                        }
                        if window.len() >= dedup_window {
                            if let Some(old) = window.pop_front() {
                                window_set.remove(&old);
                            }
                        }
                        window_set.insert(key.clone());
                        window.push_back(key);
                    }
                    if blacklists.iter().any(|bl| bl.contains_suffix(owner.as_ascii())) {
                        stats.blacklisted += 1;
                        continue;
                    }
                    stats.routed += 1;
                    router.push_domains(std::iter::once(owner));
                }
            }
        }
    }
    (router.into_report(), per_tld)
}

/// Runs the real scanner over the same inputs.
fn scan(
    inputs: &[(&str, &[u8])],
    chunk_bytes: usize,
    dedup_window: usize,
    blacklists: Vec<Blacklist>,
) -> shamfinder::core::ScanReport {
    let config = ScanConfig {
        chunk_bytes,
        dedup_window,
        blacklists,
        batch_capacity: 256,
        ..ScanConfig::default()
    };
    let mut scanner = ZoneScanner::new(SessionRouter::new(Arc::clone(index())), config);
    for (tld, data) in inputs {
        scanner
            .scan_reader(tld, *data)
            .expect("in-memory readers cannot fail I/O");
    }
    scanner.finish()
}

/// Full-fidelity comparison: router reports equal, every per-TLD
/// counter equal (elapsed time excepted), books closed on both sides.
fn assert_equivalent(
    report: &shamfinder::core::ScanReport,
    expected_router: &RouterReport,
    expected_tld: &BTreeMap<String, TldScanStats>,
    context: &str,
) {
    report
        .verify_accounting()
        .unwrap_or_else(|e| panic!("{context}: {e}"));
    assert_eq!(&report.router, expected_router, "{context}: detections diverged");
    assert_eq!(
        report.per_tld.len(),
        expected_tld.len(),
        "{context}: TLD sets diverged"
    );
    for (tld, want) in expected_tld {
        let mut got = report.per_tld[tld];
        got.elapsed_secs = 0.0;
        assert!(
            want.is_accounted(),
            "{context}: replay books don't close for .{tld}"
        );
        assert_eq!(&got, want, "{context}: .{tld} accounting diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generator shape (lookalike/malformed rates, seed), any chunk
    /// size, any dedup-window length, with and without a TLD-wide
    /// blacklist: the chunked scanner and the unchunked replay agree
    /// exactly on a two-TLD feed.
    #[test]
    fn scanner_matches_unchunked_replay(
        seed in any::<u64>(),
        homographs in 10u32..80,
        malformed in 0u32..30,
        chunk in 4096usize..20_000,
        window in 0usize..96,
        blacklist_net in 0u8..2,
    ) {
        let com = gen_zone("com", seed, 24 << 10, homographs, malformed);
        let net = gen_zone("net", seed ^ 0x9E37_79B9, 16 << 10, homographs, malformed);
        let inputs: Vec<(&str, &[u8])> = vec![("com", &com), ("net", &net)];

        let mut blacklists = Vec::new();
        if blacklist_net == 1 {
            let mut bl = Blacklist::new("tld-wide");
            bl.add("net");
            blacklists.push(bl);
        }

        let (want_router, want_tld) = replay(&inputs, window, &blacklists);
        let report = scan(&inputs, chunk, window, blacklists);
        assert_equivalent(&report, &want_router, &want_tld, "generated feed");

        if blacklist_net == 1 {
            let net_stats = &report.per_tld["net"];
            prop_assert_eq!(net_stats.routed, 0, "TLD-wide blacklist leaked");
            prop_assert!(net_stats.blacklisted > 0);
        }
    }
}

/// A fixed damaged-input corpus base; generated once.
fn damage_base() -> &'static Vec<u8> {
    static BASE: OnceLock<Vec<u8>> = OnceLock::new();
    BASE.get_or_init(|| gen_zone("com", 0xDA11A6ED, 48 << 10, 40, 8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating at an arbitrary byte offset and corrupting a byte at
    /// an arbitrary position (high-bit flip → invalid UTF-8, zero byte,
    /// or an injected newline that reshapes line structure) never
    /// panics, keeps the books closed, and the two models still agree
    /// on the damaged bytes.
    #[test]
    fn truncation_and_corruption_keep_the_books(
        cut in 0usize..(48 << 10),
        flip_at in any::<usize>(),
        flip_mode in 0u8..4,
        chunk in 4096usize..9_000,
    ) {
        let base = damage_base();
        let cut = cut.min(base.len());
        let mut data = base[..cut].to_vec();
        if !data.is_empty() {
            let at = flip_at % data.len();
            match flip_mode {
                0 => data[at] ^= 0x80,      // often invalid UTF-8
                1 => data[at] = 0x00,
                2 => data[at] = b'\n',      // reshape line structure
                _ => {}                     // pure truncation
            }
        }
        let inputs: Vec<(&str, &[u8])> = vec![("com", &data)];
        let (want_router, want_tld) = replay(&inputs, 64, &[]);
        let report = scan(&inputs, chunk, 64, Vec::new());
        assert_equivalent(&report, &want_router, &want_tld, "damaged feed");
    }
}

/// The acceptance-criterion configuration, pinned exactly: a two-TLD
/// generated feed with planted lookalikes scans to the same report at
/// 1 and N worker threads, both equal to the unchunked replay, and the
/// lookalikes are actually detected.
#[test]
fn scan_is_thread_count_invariant_and_detects_plants() {
    let com = gen_zone("com", 11, 128 << 10, 50, 5);
    let net = gen_zone("net", 12, 64 << 10, 50, 5);
    let inputs: Vec<(&str, &[u8])> = vec![("com", &com), ("net", &net)];

    let (want_router, want_tld) = {
        let _one = rayon::ThreadOverride::new(1);
        replay(&inputs, 8_192, &[])
    };
    assert!(
        want_router.detection_count() > 0,
        "generated corpus must be detection-rich"
    );

    let hardware = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4));
    for threads in [1usize, hardware] {
        let _forced = rayon::ThreadOverride::new(threads);
        let report = scan(&inputs, 1 << 16, 8_192, Vec::new());
        assert_equivalent(
            &report,
            &want_router,
            &want_tld,
            &format!("{threads} thread(s)"),
        );
    }
}

/// An empty input file closes its books trivially and produces an
/// all-zero ledger rather than a missing or phantom entry.
#[test]
fn empty_file_accounts_to_zero()  {
    let inputs: Vec<(&str, &[u8])> = vec![("org", b"")];
    let (want_router, want_tld) = replay(&inputs, 16, &[]);
    let report = scan(&inputs, 4096, 16, Vec::new());
    assert_equivalent(&report, &want_router, &want_tld, "empty file");
    let mut org = report.per_tld["org"];
    org.elapsed_secs = 0.0;
    assert_eq!(org, TldScanStats::default());
    assert_eq!(report.files, 1);
}
