//! Cross-crate consistency of the homoglyph databases: the SimChar build
//! respects IDNA and font invariants, UC and SimChar compose correctly,
//! and the figures' specific characters behave as the paper describes.

use shamfinder::measure::CharDbContext;
use shamfinder::prelude::*;
use shamfinder::unicode::{is_pvalid, repertoire};
use std::sync::OnceLock;

fn ctx() -> &'static CharDbContext {
    static CTX: OnceLock<CharDbContext> = OnceLock::new();
    CTX.get_or_init(CharDbContext::create)
}

#[test]
fn every_simchar_char_is_pvalid_and_covered() {
    let ctx = ctx();
    for cp in ctx.build.db.chars() {
        let code = CodePoint::new(cp).expect("valid code point");
        assert!(is_pvalid(code), "U+{cp:04X} in SimChar but not PVALID");
        assert!(ctx.font.covers(code), "U+{cp:04X} in SimChar but not covered");
    }
}

#[test]
fn every_simchar_pair_verifies_against_the_font() {
    let ctx = ctx();
    for (a, b, recorded) in ctx.build.db.pairs() {
        let ga = ctx.font.glyph(CodePoint(a)).expect("glyph a");
        let gb = ctx.font.glyph(CodePoint(b)).expect("glyph b");
        let actual = ga.delta(&gb);
        assert_eq!(actual, u32::from(recorded), "U+{a:04X}/U+{b:04X}");
        assert!(actual <= ctx.build.db.theta());
        assert!(ga.popcount() >= 10, "sparse char survived Step III");
        assert!(gb.popcount() >= 10);
    }
}

#[test]
fn simchar_repertoire_magnitudes_match_paper() {
    let ctx = ctx();
    // Paper: 52,457 rendered; 12,686 chars; 13,208 pairs.
    assert!((45_000..60_000).contains(&ctx.build.rendered), "{}", ctx.build.rendered);
    assert!(
        (8_000..16_000).contains(&ctx.build.db.char_count()),
        "{}",
        ctx.build.db.char_count()
    );
    assert!(
        (8_000..18_000).contains(&ctx.build.db.pair_count()),
        "{}",
        ctx.build.db.pair_count()
    );
}

#[test]
fn paper_table1_set_relations_hold() {
    let ctx = ctx();
    let stats = repertoire::repertoire_stats();
    let uc_chars = ctx.uc.char_set();
    let uc_idna = ctx.uc.filter(|cp| is_pvalid(CodePoint(cp)));

    // IDNA ≫ UC; UC ∩ IDNA ≪ UC; SimChar ≫ UC ∩ IDNA; SimChar ∩ UC small.
    assert!(stats.pvalid > uc_chars.len() * 10);
    assert!(uc_idna.char_set().len() * 3 < uc_chars.len());
    assert!(ctx.build.db.char_count() > uc_idna.char_set().len() * 5);
    let overlap = ctx.build.db.chars_in_common(&uc_chars);
    assert!(overlap < ctx.build.db.char_count() / 10, "overlap = {overlap}");
    assert!(overlap > 20, "the sets must still intersect: {overlap}");
}

#[test]
fn union_db_is_strictly_stronger_than_either() {
    let ctx = ctx();
    let db = HomoglyphDb::new(ctx.build.db.clone(), ctx.uc.clone());
    // SimChar-only pair: é/e (accents are not in UC).
    assert!(db.is_pair_with('e' as u32, 0xE9, DbSelection::SimCharOnly));
    assert!(!db.is_pair_with('e' as u32, 0xE9, DbSelection::UcOnly));
    // UC-only pair: the paper's Fig. 11 Warang Citi letter.
    assert!(db.is_pair_with('u' as u32, 0x118D8, DbSelection::UcOnly));
    assert!(!db.is_pair_with('u' as u32, 0x118D8, DbSelection::SimCharOnly));
    // Union has both.
    assert!(db.is_pair('e' as u32, 0xE9));
    assert!(db.is_pair('u' as u32, 0x118D8));
}

#[test]
fn figure2_walkthrough() {
    // The exact walk of the paper's Figure 2: gօօgle matches google
    // through the DB; gocaié fails at the first mismatching position.
    let ctx = ctx();
    let db = HomoglyphDb::new(ctx.build.db.clone(), ctx.uc.clone());
    let reference: Vec<char> = "google".chars().collect();
    let positive: Vec<char> = "gօօgle".chars().collect();
    let negative: Vec<char> = "gocaié".chars().collect();

    for (r, x) in reference.iter().zip(&positive) {
        assert!(r == x || db.is_pair(*r as u32, *x as u32));
    }
    let first_bad = reference
        .iter()
        .zip(&negative)
        .position(|(r, x)| r != x && !db.is_pair(*r as u32, *x as u32));
    assert!(first_bad.is_some(), "gocaié must fail somewhere");
}

#[test]
fn simchar_export_round_trips_at_scale() {
    let ctx = ctx();
    let text = ctx.build.db.to_text();
    let loaded = SimCharDb::from_text(&text).expect("parse export");
    assert_eq!(loaded.pair_count(), ctx.build.db.pair_count());
    assert_eq!(loaded.char_count(), ctx.build.db.char_count());
    // Spot-check a known pair.
    assert!(loaded.is_pair('o' as u32, 0x043E));
}

#[test]
fn font_versions_change_coverage_not_existing_glyphs() {
    let ctx = ctx();
    let old = shamfinder::glyph::SynthUnifont::v11();
    // Version 11 covers strictly less.
    let covered_new = repertoire::pvalid_code_points()
        .filter(|&cp| ctx.font.covers(cp))
        .count();
    let covered_old = repertoire::pvalid_code_points()
        .filter(|&cp| old.covers(cp))
        .count();
    assert!(covered_old < covered_new);
    // Shared glyphs identical — SimChar updates are incremental in
    // spirit (paper §4.2).
    for cp in [0x61u32, 0x0430, 0xAC00, 0x4E8C] {
        let code = CodePoint(cp);
        assert_eq!(old.glyph(code), ctx.font.glyph(code));
    }
}

#[test]
fn theta_sweep_is_monotone() {
    // Larger θ can only add pairs (Fig. 9's companion property).
    use shamfinder::simchar::{build, BuildConfig, Repertoire};
    let font = SynthUnifont::v12();
    let mut last = 0usize;
    for theta in [0u32, 2, 4, 6] {
        let result = build(
            &font,
            &BuildConfig {
                theta,
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                ]),
                ..BuildConfig::default()
            },
        );
        assert!(
            result.db.pair_count() >= last,
            "θ={theta} lost pairs: {} < {last}",
            result.db.pair_count()
        );
        last = result.db.pair_count();
    }
    assert!(last > 0);
}
