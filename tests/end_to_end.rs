//! End-to-end integration: workload generation → corpus ingestion →
//! SimChar build → detection → active analysis → blacklists, asserting
//! the paper's structural findings hold on the synthetic world.

use shamfinder::measure::{CharDbContext, Study};
use shamfinder::workload::{Workload, WorkloadConfig};
use std::collections::HashSet;
use std::sync::OnceLock;

struct World {
    ctx: &'static CharDbContext,
    study: Study,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        static CTX: OnceLock<CharDbContext> = OnceLock::new();
        let ctx = CTX.get_or_init(CharDbContext::create);
        let workload = Workload::generate(WorkloadConfig::test());
        let study = Study::run(workload, ctx.build.db.clone(), ctx.uc.clone());
        World { ctx, study }
    })
}

#[test]
fn every_planted_detectable_homograph_is_detected() {
    let w = world();
    let detected: HashSet<&String> =
        w.study.detections.iter().map(|d| &d.idn_ascii).collect();
    for h in &w.study.workload.truth.homographs {
        if h.union_detectable() {
            assert!(
                detected.contains(&h.ace),
                "planted {} ({:?}, target {}) not detected",
                h.ace,
                h.class,
                h.target
            );
        }
    }
}

#[test]
fn undetectable_plants_are_not_detected() {
    let w = world();
    let detected: HashSet<&String> =
        w.study.detections.iter().map(|d| &d.idn_ascii).collect();
    for h in &w.study.workload.truth.homographs {
        if !h.union_detectable() {
            assert!(
                !detected.contains(&h.ace),
                "undetectable {} was detected",
                h.ace
            );
        }
    }
}

#[test]
fn detection_counts_follow_table8_ordering() {
    let w = world();
    let uc = w.study.detected_by["UC"];
    let sim = w.study.detected_by["SimChar"];
    let union = w.study.detected_by["UC ∪ SimChar"];
    assert!(uc < sim, "UC {uc} must find fewer than SimChar {sim}");
    assert!(sim <= union);
    assert!(uc * 4 < sim, "paper: SimChar finds ≈8× more (got {uc} vs {sim})");
    // The union equals the ground-truth detectable count plus any planted
    // stars (which are all detectable).
    let planted_detectable = w
        .study
        .workload
        .truth
        .homographs
        .iter()
        .filter(|h| h.union_detectable())
        .count();
    assert_eq!(union, planted_detectable);
}

#[test]
fn per_selection_detection_matches_ground_truth() {
    let w = world();
    let truth_uc = w
        .study
        .workload
        .truth
        .homographs
        .iter()
        .filter(|h| h.uc_detectable())
        .count();
    let truth_sim = w
        .study
        .workload
        .truth
        .homographs
        .iter()
        .filter(|h| h.simchar_detectable())
        .count();
    assert_eq!(w.study.detected_by["UC"], truth_uc);
    assert_eq!(w.study.detected_by["SimChar"], truth_sim);
}

#[test]
fn funnel_is_monotone_and_matches_scans() {
    let w = world();
    let analysis = w.study.active_analysis();
    assert!(analysis.with_ns >= analysis.scans.len());
    assert!(analysis.scans.len() >= analysis.active.len());
    assert!(!analysis.active.is_empty());
    // Every active host is genuinely open in the ground truth.
    for host in &analysis.active {
        let a = &w.study.workload.truth.assignments[host];
        assert!(a.open_80 || a.open_443, "{host} is not actually open");
    }
}

#[test]
fn table9_head_is_the_papers() {
    let w = world();
    let rendered = w.study.table9(5).render();
    let first_data_line = rendered.lines().nth(3).unwrap_or("");
    assert!(
        first_data_line.contains("myetherwallet.com"),
        "top target should be myetherwallet: {rendered}"
    );
}

#[test]
fn blacklisted_detected_homographs_revert_to_targets() {
    let w = world();
    let db = shamfinder::simchar::HomoglyphDb::new(
        w.ctx.build.db.clone(),
        w.ctx.uc.clone(),
    );
    let targets: std::collections::HashMap<&String, &String> = w
        .study
        .workload
        .truth
        .homographs
        .iter()
        .map(|h| (&h.ace, &h.target))
        .collect();
    let mut checked = 0;
    for d in &w.study.detections {
        let Some(expected) = targets.get(&d.idn_ascii) else { continue };
        if &*d.reference != expected.as_str() {
            continue; // multi-reference match; reverting may pick either
        }
        let reverted = shamfinder::core::revert_stem(&db, &d.idn_unicode);
        assert_eq!(
            reverted.stem(),
            expected.as_str(),
            "revert({}) != {}",
            d.idn_unicode,
            expected
        );
        checked += 1;
        if checked > 200 {
            break;
        }
    }
    assert!(checked > 50, "too few revert checks ran: {checked}");
}

#[test]
fn corpus_union_is_superset_of_both_sources() {
    let w = world();
    let (zd, _) = w.study.corpus_stats.zone;
    let (ld, _) = w.study.corpus_stats.list;
    let (ud, ui) = w.study.corpus_stats.union;
    assert!(ud >= zd.max(ld));
    assert!(ui > 0);
    assert_eq!(w.study.domains.len(), ud);
}

#[test]
fn all_tables_render_without_panicking() {
    let w = world();
    let analysis = w.study.active_analysis();
    let db = shamfinder::simchar::HomoglyphDb::new(
        w.ctx.build.db.clone(),
        w.ctx.uc.clone(),
    );
    for rendered in [
        w.study.table6().render(),
        w.study.table7(8).render(),
        w.study.table8().render(),
        w.study.table9(5).render(),
        w.study.table10(&analysis).render(),
        w.study.table11(&analysis, 10).render(),
        w.study.table12_13(&analysis).0.render(),
        w.study.table12_13(&analysis).1.render(),
        w.study.table14().render(),
        w.study.revert_analysis(&db).render(),
        w.study.timing().render(),
    ] {
        assert!(rendered.contains("=="), "table missing title: {rendered}");
        assert!(rendered.lines().count() >= 3);
    }
}
