//! Failure-injection and fuzz-style resilience tests: every parser and
//! decoder in the workspace must be *total* — arbitrary input yields
//! `Ok` or a typed error, never a panic.

use proptest::prelude::*;
use shamfinder::confusables::format as uc_format;
use shamfinder::dns::wire;
use shamfinder::glyph::{GlyphSource, SynthUnifont};
use shamfinder::prelude::*;
use shamfinder::simchar::SimCharDb;

proptest! {
    /// The DNS wire decoder never panics on arbitrary bytes.
    #[test]
    fn dns_wire_decode_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&data);
    }

    /// Decoding a valid message with arbitrary truncation never panics.
    #[test]
    fn dns_wire_truncation_total(cut in 0usize..64) {
        let q = wire::Message::query(
            7,
            DomainName::parse("xn--ggle-55da.com").unwrap(),
            shamfinder::dns::RecordType::Mx,
        );
        let bytes = wire::encode(&q);
        let cut = cut.min(bytes.len());
        let _ = wire::decode(&bytes[..cut]);
    }

    /// Bit-flipped messages decode or fail cleanly.
    #[test]
    fn dns_wire_bitflip_total(pos in 0usize..64, bit in 0u8..8) {
        let q = wire::Message::query(
            3,
            DomainName::parse("alive.com").unwrap(),
            shamfinder::dns::RecordType::A,
        );
        let mut bytes = wire::encode(&q);
        if pos < bytes.len() {
            bytes[pos] ^= 1 << bit;
        }
        let _ = wire::decode(&bytes);
    }

    /// The confusables.txt parser is total over arbitrary text.
    #[test]
    fn confusables_parse_total(text in "[ -~\\n;#→]{0,300}") {
        let _ = uc_format::parse(&text);
    }

    /// The zone parser (lenient mode) accepts any text without panicking
    /// and never yields more records than input lines.
    #[test]
    fn zone_lenient_total(text in "[ -~\\n\\t]{0,500}") {
        let (zone, errors) = shamfinder::dns::parse_lenient(&text, "com");
        prop_assert!(zone.records.len() + errors.len() <= text.lines().count() + 1);
    }

    /// The strict zone parser is total over arbitrary bytes: any input —
    /// valid UTF-8 or not — yields `Ok` or `ZoneError`, never a panic.
    #[test]
    fn zone_strict_total_over_bytes(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&data);
        let _ = shamfinder::dns::parse(&text, "com");
        let _ = shamfinder::dns::parse_domain_list(&text);
    }

    /// A valid zone truncated at *every* byte offset parses or fails
    /// cleanly — a disconnect can cut a feed anywhere, including inside
    /// a multi-byte UTF-8 sequence (the lossy decode models the
    /// replacement a byte-stream reader would hand the parser).
    #[test]
    fn zone_truncation_at_every_offset_total(extra in 0usize..3) {
        let zone = format!(
            "$ORIGIN com.\n$TTL 3600\ngoogle IN NS ns{extra}.google.com.\n\
             xn--ggle-55da 60 IN A 192.0.2.7\nnote IN TXT \"sémi; colon\"\n"
        );
        let bytes = zone.as_bytes();
        for cut in 0..=bytes.len() {
            let text = String::from_utf8_lossy(&bytes[..cut]);
            let _ = shamfinder::dns::parse(&text, "com");
            let (parsed, errors) = shamfinder::dns::parse_lenient(&text, "com");
            prop_assert!(parsed.records.len() + errors.len() <= text.lines().count() + 1);
        }
    }

    /// A valid zone with random byte flips parses or fails cleanly, and
    /// the lenient pass never loses account of a line.
    #[test]
    fn zone_bitflip_total(
        flips in proptest::collection::vec((0usize..200, 0u8..8), 1..8),
    ) {
        let mut bytes = b"$ORIGIN com.\n$TTL 3600\ngoogle IN NS ns1.google.com.\n\
                          mail IN MX 10 mx.mail.com.\nalias IN CNAME www.google.com.\n"
            .to_vec();
        for &(pos, bit) in &flips {
            let at = pos % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = shamfinder::dns::parse(&text, "com");
        let (zone, errors) = shamfinder::dns::parse_lenient(&text, "com");
        prop_assert!(zone.records.len() + errors.len() <= text.lines().count() + 1);
    }

    /// The streaming line parser agrees with the batch parser on any
    /// input, fed line by line — chunking is unobservable, and an error
    /// line never poisons the lines after it.
    #[test]
    fn zone_stream_equals_batch(text in "[ -~\\n\\t]{0,400}") {
        let (zone, errors) = shamfinder::dns::parse_lenient(&text, "com");
        let mut parser = shamfinder::dns::ZoneStreamParser::new("com");
        let mut records = Vec::new();
        let mut failures = 0usize;
        for raw in text.lines() {
            match parser.push_line(raw) {
                Ok(Some(rr)) => records.push(rr),
                Ok(None) => {}
                Err(_) => failures += 1,
            }
        }
        prop_assert_eq!(records, zone.records);
        prop_assert_eq!(failures, errors.len());
    }

    /// The SimChar text loader is total.
    #[test]
    fn simchar_from_text_total(text in "[ -~\\n]{0,200}") {
        let _ = SimCharDb::from_text(&text);
    }

    /// Glyph rendering is total over the entire code space (assigned or
    /// not, covered or not).
    #[test]
    fn glyph_render_total(v in 0u32..0x110000) {
        if let Some(cp) = CodePoint::new(v) {
            let font = SynthUnifont::v12();
            if let Some(g) = font.glyph(cp) {
                prop_assert!(g.popcount() <= 1024);
            }
        }
    }

    /// Domain parsing is total over arbitrary unicode.
    #[test]
    fn domain_parse_total(s in "\\PC{0,60}") {
        let _ = DomainName::parse(&s);
    }

    /// Language identification is total and deterministic.
    #[test]
    fn langid_total(s in "\\PC{0,40}") {
        let a = shamfinder::langid::identify(&s);
        let b = shamfinder::langid::identify(&s);
        prop_assert_eq!(a.language, b.language);
        prop_assert!((0.0..=1.0).contains(&a.confidence));
    }

    /// Restriction levels are total.
    #[test]
    fn restriction_total(s in "\\PC{0,40}") {
        let _ = shamfinder::confusables::restriction_level(&s);
    }
}

#[test]
fn zone_parser_survives_hostile_lines() {
    let hostile = "\
$ORIGIN com.
$TTL not-a-number
good IN A 192.0.2.1
 IN A 192.0.2.2
\u{0} IN NS x.
name IN MX ten mail.x.com.
name IN A 999.999.999.999
xn--\u{FFFD} IN NS ns.x.
okay IN NS ns1.x.example.
";
    let (zone, errors) = shamfinder::dns::parse_lenient(hostile, "com");
    assert!(zone.records.len() >= 2, "good lines must survive");
    assert!(!errors.is_empty(), "bad lines must be reported");
}

#[test]
fn http_client_rejects_malformed_responses() {
    use shamfinder::web::Client;
    use std::io::Write as _;
    use std::net::TcpListener;
    use std::time::Duration;

    // A server that speaks garbage.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { break };
            let _ = s.write_all(b"NOT-HTTP AT ALL\r\n\r\n");
        }
    });
    let mut client = Client { timeout: Duration::from_millis(400), ..Default::default() };
    client.hosts_override.insert("garbage.test".into(), addr);
    assert!(client.get("garbage.test", "/").is_err());
}

#[test]
fn detector_survives_garbage_idn_stems() {
    let font = SynthUnifont::v12();
    let simchar = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
            ..BuildConfig::default()
        },
    )
    .db;
    let fw = Framework::new(
        simchar,
        UcDatabase::embedded(),
        vec!["google".to_string()],
        "com",
    );
    // Stems with controls, empty-ish content and unassigned code points.
    let idns = vec![
        ("\u{0}\u{1}\u{2}".to_string(), "xn--garbage.com".to_string()),
        ("".to_string(), "xn--empty.com".to_string()),
        ("\u{E123}oogle".to_string(), "xn--unassigned.com".to_string()),
        ("ооооооооооо".to_string(), "xn--long-o.com".to_string()),
    ];
    let hits = fw.detect_only(&idns);
    // Nothing matches "google"; more importantly, nothing panics.
    assert!(hits.is_empty());
}
