//! Fault-injection acceptance suite for the ingest front-end
//! (`sham_core::ingest` + the `sham_workload::faults` harness).
//!
//! The invariants pinned here are the PR's acceptance criteria:
//!
//! 1. **Bit-identity** — with a zero-fault schedule, the service's
//!    router report equals a synchronous `SessionRouter` batch replay
//!    of the same events, byte for byte. CI runs this suite at
//!    `SHAM_THREADS=1` and `=2`, so the identity holds at 1 and N
//!    worker threads.
//! 2. **Exact accounting** — under any seeded schedule of corrupt
//!    records, stalls, disconnects and forced lane panics, the service
//!    never aborts and every delivered event lands in exactly one
//!    bucket: detected/clean (router), unrouted (router), shed, or
//!    lost; every corrupted record is quarantined.
//! 3. **Lossless faults stay invisible** — stalls, disconnects and
//!    lane panics (which poison + retry) leave the router report
//!    bit-identical to the clean run; only corruption (and shed, and
//!    double-panic loss) may change it.

use shamfinder::core::{
    Backpressure, DetectionIndex, FeedError, FeedItem, FeedOutcome, FeedSource,
    IngestConfig, IngestService, RetryPolicy, SessionRouter,
};
use shamfinder::simchar::{build, BuildConfig, HomoglyphDb, Repertoire};
use shamfinder::workload::{
    lane_panic_hook, multi_tld_event_stream, Fault, FaultSchedule, FaultyZoneFeed,
    FeedStats, MultiTldConfig, StreamConfig, Workload, WorkloadConfig, ZoneEvent,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A small but detection-rich 3-TLD world, built once.
fn world() -> &'static (Arc<DetectionIndex>, Vec<ZoneEvent>) {
    static WORLD: OnceLock<(Arc<DetectionIndex>, Vec<ZoneEvent>)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let workload = Workload::generate(WorkloadConfig {
            benign_ascii: 3_000,
            benign_idns: 300,
            reference_size: 500,
            homograph_permille: 60,
            seed: 0xFA_017,
        });
        let font = shamfinder::glyph::SynthUnifont::v12();
        let result = build(
            &font,
            &BuildConfig {
                repertoire: Repertoire::Blocks(vec![
                    "Basic Latin",
                    "Latin-1 Supplement",
                    "Cyrillic",
                    "Greek and Coptic",
                ]),
                ..BuildConfig::default()
            },
        );
        let index = DetectionIndex::shared(
            HomoglyphDb::new(result.db, shamfinder::confusables::UcDatabase::embedded()),
            workload.references.iter().cloned(),
        );
        let feed_shape = MultiTldConfig {
            base: StreamConfig { churn_every: 512, churn_size: 2, seed: 0xFEED },
            ..MultiTldConfig::default()
        };
        let events = multi_tld_event_stream(&workload, &feed_shape);
        (index, events)
    })
}

/// The synchronous ground truth: the same events through a plain
/// `SessionRouter`, exactly as `examples/phishing_hunt.rs` replays
/// them.
fn batch_replay(
    index: &Arc<DetectionIndex>,
    events: &[ZoneEvent],
    batch: usize,
) -> shamfinder::core::RouterReport {
    let mut router = SessionRouter::new(Arc::clone(index)).with_batch_capacity(batch);
    for event in events {
        match event {
            ZoneEvent::Registered(name) => router.push_domains(std::iter::once(name)),
            ZoneEvent::ReferenceChurn { added, removed } => {
                router.apply_reference_diff(added, removed)
            }
        }
    }
    router.into_report()
}

/// A no-sleep retry policy so fault tests run at full speed.
fn instant_retry() -> RetryPolicy {
    RetryPolicy { base: Duration::ZERO, ..RetryPolicy::default() }
}

fn service_config(batch: usize) -> IngestConfig {
    IngestConfig {
        queue_capacity: 256,
        batch_capacity: batch,
        retry: instant_retry(),
        ..IngestConfig::default()
    }
}

#[test]
fn zero_fault_run_is_bit_identical_to_batch_router() {
    let (index, events) = world();
    let expected = batch_replay(index, events, 64);
    assert!(expected.detection_count() > 50, "world must be detection-rich");
    assert!(expected.reference_diffs > 0, "feed must carry churn");

    let stats = FeedStats::shared();
    let feed = FaultyZoneFeed::new(
        "clean",
        events.clone(),
        FaultSchedule::none(),
        Arc::clone(&stats),
    );
    let service = IngestService::new(Arc::clone(index), service_config(64));
    let report = service.run(vec![Box::new(feed)]);

    assert_eq!(report.router, expected, "queues/threads must be unobservable");
    assert_eq!(report.shed, 0);
    assert_eq!(report.lost, 0);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.lane_panics, 0);
    assert_eq!(report.feeds.len(), 1);
    assert_eq!(report.feeds[0].outcome, FeedOutcome::Completed);
    assert_eq!(
        report.events_accounted(),
        stats.registrations.load(Ordering::Relaxed),
        "every delivered event in exactly one bucket"
    );
}

#[test]
fn lossless_faults_leave_the_report_bit_identical() {
    let (index, events) = world();
    let expected = batch_replay(index, events, 32);

    // Stalls and disconnects sprinkled through the feed, plus forced
    // worker panics on the first .com and .net flushes — all lossless:
    // transients resume, panicked batches retry on a reopened lane.
    let schedule = FaultSchedule::none()
        .with_fault(3, Fault::Stall)
        .with_fault(97, Fault::Disconnect)
        .with_fault(1_203, Fault::Stall)
        .with_fault(2_500, Fault::Disconnect)
        .with_lane_panic("com", 1)
        .with_lane_panic("net", 2);
    let stats = FeedStats::shared();
    let feed =
        FaultyZoneFeed::new("flaky", events.clone(), schedule.clone(), Arc::clone(&stats));
    let service = IngestService::new(Arc::clone(index), service_config(32))
        .with_flush_hook(Arc::new(lane_panic_hook(&schedule)));
    let report = service.run(vec![Box::new(feed)]);

    assert_eq!(report.router, expected, "lossless faults must be unobservable");
    assert_eq!(report.lane_panics, 2, "both scheduled panics fired");
    assert_eq!(report.lost, 0, "poisoned batches were retried, not lost");
    assert_eq!(report.feeds[0].retries, 4, "each transient retried once");
    assert_eq!(report.feeds[0].outcome, FeedOutcome::Completed);
    assert_eq!(
        stats.stalls.load(Ordering::Relaxed) + stats.disconnects.load(Ordering::Relaxed),
        4
    );
}

#[test]
fn seeded_fault_schedule_accounts_every_event_exactly_once() {
    let (index, events) = world();
    // ~1.5% of positions fault (uniform corrupt/stall/disconnect),
    // plus worker panics on early flushes of every lane.
    let schedule = FaultSchedule::seeded(0xD15EA5E, events.len() as u64, 15)
        .with_lane_panic("com", 2)
        .with_lane_panic("net", 1)
        .with_lane_panic("org", 1);
    let stats = FeedStats::shared();
    let feed =
        FaultyZoneFeed::new("noisy", events.clone(), schedule.clone(), Arc::clone(&stats));
    let service = IngestService::new(Arc::clone(index), service_config(32))
        .with_flush_hook(Arc::new(lane_panic_hook(&schedule)));
    let report = service.run(vec![Box::new(feed)]);

    let delivered = stats.registrations.load(Ordering::Relaxed);
    let corrupted = stats.corrupted.load(Ordering::Relaxed);
    assert!(corrupted > 0, "seeded schedule must corrupt something");
    assert_eq!(report.quarantined, corrupted, "every corrupt record quarantined");
    assert_eq!(report.events_delivered(), delivered);
    assert_eq!(
        report.events_accounted(),
        delivered,
        "delivered = routed (detected+clean+unrouted) + shed + lost"
    );
    assert_eq!(report.lane_panics, 3);
    assert_eq!(report.lost, 0, "single panics retry losslessly");
    assert_eq!(report.feeds[0].outcome, FeedOutcome::Completed);
    assert_eq!(
        report.feeds[0].retries,
        stats.stalls.load(Ordering::Relaxed) + stats.disconnects.load(Ordering::Relaxed)
    );
    // Quarantine samples carry provenance.
    assert!(!report.quarantine.is_empty());
    for sample in &report.quarantine {
        assert_eq!(sample.feed, "noisy");
        assert!(sample.detail.contains("corrupted record"), "{}", sample.detail);
    }
}

#[test]
fn shed_backpressure_bounds_the_queue_and_counts_drops() {
    let (index, events) = world();
    let registrations: Vec<ZoneEvent> = events
        .iter()
        .filter(|e| matches!(e, ZoneEvent::Registered(n) if n.tld() == "com"))
        .take(200)
        .cloned()
        .collect();
    let n = registrations.len();
    assert_eq!(n, 200);

    // Gate the drainer: the first flush blocks until the feed is fully
    // produced, so the bounded queue must absorb or shed everything.
    let done = Arc::new(AtomicBool::new(false));
    struct GatedFeed {
        inner: FaultyZoneFeed,
        done: Arc<AtomicBool>,
    }
    impl FeedSource for GatedFeed {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn next(&mut self) -> Result<Option<FeedItem>, FeedError> {
            let item = self.inner.next();
            if matches!(item, Ok(None)) {
                self.done.store(true, Ordering::Release);
            }
            item
        }
    }
    let gate = Arc::clone(&done);
    let capacity = 16usize;
    let config = IngestConfig {
        queue_capacity: capacity,
        backpressure: Backpressure::Shed,
        batch_capacity: 1,
        retry: instant_retry(),
        ..IngestConfig::default()
    };
    let stats = FeedStats::shared();
    let feed = GatedFeed {
        inner: FaultyZoneFeed::new(
            "burst",
            registrations,
            FaultSchedule::none(),
            Arc::clone(&stats),
        ),
        done,
    };
    let service = IngestService::new(Arc::clone(index), config).with_flush_hook(Arc::new(
        move |_tld: &str, _ordinal: u64| {
            while !gate.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(50));
            }
        },
    ));
    let report = service.run(vec![Box::new(feed)]);

    // At most one batch (of one) escapes the queue before the gate
    // closes the drainer, so the shed count is pinned to a 1-wide band.
    let shed = report.shed;
    assert!(
        shed == (n - capacity) as u64 || shed == (n - capacity - 1) as u64,
        "shed {shed} outside the deterministic band"
    );
    assert_eq!(report.events_accounted(), n as u64, "shed events are accounted");
    assert_eq!(report.lanes.len(), 1);
    assert_eq!(report.lanes[0].tld, "com");
    assert_eq!(report.lanes[0].shed, shed);
    assert_eq!(report.lanes[0].blocked, 0, "shed lanes never block");
}

#[test]
fn repeated_failures_open_the_circuit() {
    struct DeadFeed;
    impl FeedSource for DeadFeed {
        fn name(&self) -> &str {
            "dead"
        }
        fn next(&mut self) -> Result<Option<FeedItem>, FeedError> {
            Err(FeedError::Disconnect("remote closed".to_string()))
        }
    }
    let (index, _) = world();
    let config = IngestConfig {
        retry: RetryPolicy {
            base: Duration::ZERO,
            circuit_threshold: 3,
            ..RetryPolicy::default()
        },
        ..IngestConfig::default()
    };
    let service = IngestService::new(Arc::clone(index), config);
    let report = service.run(vec![Box::new(DeadFeed)]);
    assert_eq!(report.feeds[0].outcome, FeedOutcome::CircuitOpen);
    assert_eq!(report.feeds[0].retries, 2, "threshold-1 retries before opening");
    assert!(report.feeds[0].last_error.as_deref().unwrap().contains("remote closed"));
    assert_eq!(report.router.total_domains(), 0);
}

#[test]
fn quarantine_ring_is_bounded_but_counts_everything() {
    let (index, events) = world();
    let registrations: Vec<ZoneEvent> = events
        .iter()
        .filter(|e| matches!(e, ZoneEvent::Registered(_)))
        .take(50)
        .cloned()
        .collect();
    let mut schedule = FaultSchedule::none();
    for position in 0..50 {
        schedule = schedule.with_fault(position, Fault::Corrupt);
    }
    let config = IngestConfig {
        quarantine_capacity: 8,
        retry: instant_retry(),
        ..IngestConfig::default()
    };
    let stats = FeedStats::shared();
    let feed = FaultyZoneFeed::new("all-bad", registrations, schedule, Arc::clone(&stats));
    let service = IngestService::new(Arc::clone(index), config);
    let report = service.run(vec![Box::new(feed)]);

    assert_eq!(report.quarantined, 50);
    assert_eq!(report.quarantine.len(), 8, "ring keeps the newest samples");
    // The ring holds the *last* 8 positions, in order.
    let positions: Vec<u64> = report.quarantine.iter().map(|s| s.position).collect();
    assert_eq!(positions, (43..=50).collect::<Vec<u64>>());
    assert_eq!(report.router.total_domains(), 0, "nothing clean survived");
    assert_eq!(report.feeds[0].quarantined, 50);
}

#[test]
fn fixed_lane_set_counts_foreign_tlds_as_unrouted() {
    let (index, events) = world();
    let stats = FeedStats::shared();
    let feed = FaultyZoneFeed::new(
        "三tld",
        events.clone(),
        FaultSchedule::none(),
        Arc::clone(&stats),
    );
    let config = IngestConfig {
        tlds: Some(vec!["com".to_string(), "net".to_string()]),
        retry: instant_retry(),
        ..IngestConfig::default()
    };
    let service = IngestService::new(Arc::clone(index), config);
    let report = service.run(vec![Box::new(feed)]);

    let org_events = events
        .iter()
        .filter(|e| matches!(e, ZoneEvent::Registered(n) if n.tld() == "org"))
        .count();
    assert!(org_events > 0);
    assert_eq!(report.router.unrouted_domains, org_events);
    assert_eq!(
        report.events_accounted(),
        stats.registrations.load(Ordering::Relaxed),
        "unrouted events are still accounted"
    );
}

#[test]
fn idle_lanes_fold_and_reopen_without_touching_the_report() {
    let (index, events) = world();
    // A bursty single-feed schedule: a .com run, then a .net run (while
    // .com sits idle and folds), then .com again (the folded lane
    // reopens). Queue capacity 4 forces connector/drainer lockstep so
    // the idle clock actually advances between bursts.
    let mut com: Vec<ZoneEvent> = Vec::new();
    let mut net: Vec<ZoneEvent> = Vec::new();
    for event in events.iter() {
        if let ZoneEvent::Registered(name) = event {
            match name.tld() {
                "com" if com.len() < 80 => com.push(event.clone()),
                "net" if net.len() < 40 => net.push(event.clone()),
                _ => {}
            }
        }
    }
    let bursty: Vec<ZoneEvent> = com[..40]
        .iter()
        .chain(net.iter())
        .chain(com[40..].iter())
        .cloned()
        .collect();

    let expected = batch_replay(index, &bursty, 4);
    let config = IngestConfig {
        queue_capacity: 4,
        batch_capacity: 4,
        idle_fold_after: Some(2),
        retry: instant_retry(),
        ..IngestConfig::default()
    };
    let stats = FeedStats::shared();
    let feed =
        FaultyZoneFeed::new("bursty", bursty, FaultSchedule::none(), Arc::clone(&stats));
    let service = IngestService::new(Arc::clone(index), config);
    let report = service.run(vec![Box::new(feed)]);

    assert!(report.lane_folds >= 1, "the idle .com lane must fold");
    assert_eq!(report.router, expected, "folding must be unobservable");
    assert_eq!(report.events_accounted(), 120);
}

#[test]
fn multiple_concurrent_feeds_merge_and_account() {
    let (index, events) = world();
    let registrations: Vec<ZoneEvent> = events
        .iter()
        .filter(|e| matches!(e, ZoneEvent::Registered(_)))
        .cloned()
        .collect();
    let half = registrations.len() / 2;
    let stats_a = FeedStats::shared();
    let stats_b = FeedStats::shared();
    let feed_a = FaultyZoneFeed::new(
        "feed-a",
        registrations[..half].to_vec(),
        FaultSchedule::seeded(7, half as u64, 10),
        Arc::clone(&stats_a),
    );
    let feed_b = FaultyZoneFeed::new(
        "feed-b",
        registrations[half..].to_vec(),
        FaultSchedule::seeded(8, (registrations.len() - half) as u64, 10),
        Arc::clone(&stats_b),
    );
    let service = IngestService::new(Arc::clone(index), service_config(64));
    let report = service.run(vec![Box::new(feed_a), Box::new(feed_b)]);

    let delivered = stats_a.registrations.load(Ordering::Relaxed)
        + stats_b.registrations.load(Ordering::Relaxed);
    let corrupted = stats_a.corrupted.load(Ordering::Relaxed)
        + stats_b.corrupted.load(Ordering::Relaxed);
    assert_eq!(report.feeds.len(), 2);
    assert_eq!(report.feeds[0].name, "feed-a");
    assert_eq!(report.feeds[1].name, "feed-b");
    assert_eq!(report.events_accounted(), delivered);
    assert_eq!(report.quarantined, corrupted);
    // Without churn, feed interleaving is set-invariant: every
    // registration the clean batch run routes is either routed or
    // quarantined here.
    let expected = batch_replay(index, &registrations, 64);
    assert_eq!(
        report.router.total_domains() as u64 + report.quarantined,
        expected.total_domains() as u64
    );
}
