//! Property-based tests (proptest) over the core data structures and the
//! detection invariants.

use proptest::prelude::*;
use shamfinder::glyph::scriptgen::{perturb, stroke_glyph, Region};
use shamfinder::glyph::Bitmap;
use shamfinder::prelude::*;
use shamfinder::punycode::{bootstring, PunycodeError};

// ---------------------------------------------------------------------------
// Punycode
// ---------------------------------------------------------------------------

proptest! {
    /// Every Unicode string round-trips through the Bootstring codec.
    #[test]
    fn punycode_round_trip(s in "\\PC{0,40}") {
        let encoded = bootstring::encode(&s).unwrap();
        prop_assert!(encoded.is_ascii());
        let decoded = bootstring::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, s);
    }

    /// ACE label conversion round-trips for registrable lowercase labels.
    #[test]
    fn ace_round_trip(s in "[a-z\u{00E0}-\u{00FF}\u{0430}-\u{044F}]{1,20}") {
        let ace = shamfinder::punycode::ace::to_ascii(&s).unwrap();
        prop_assert!(ace.len() <= 63);
        let back = shamfinder::punycode::ace::to_unicode(&ace).unwrap();
        prop_assert_eq!(back, s);
    }

    /// Decoding arbitrary ASCII never panics — it returns Ok or a typed
    /// error.
    #[test]
    fn punycode_decode_total(s in "[ -~]{0,30}") {
        match bootstring::decode(&s) {
            Ok(_) => {}
            Err(
                PunycodeError::InvalidDigit(_)
                | PunycodeError::Overflow
                | PunycodeError::InvalidCodePoint(_)
                | PunycodeError::NonBasic(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Domain parsing either fails or yields a lowercase ACE name that
    /// re-parses to itself (idempotence).
    #[test]
    fn domain_parse_idempotent(s in "[a-zA-Z0-9.\u{00E0}-\u{00FF}-]{1,40}") {
        if let Ok(d) = DomainName::parse(&s) {
            let again = DomainName::parse(d.as_ascii()).unwrap();
            prop_assert_eq!(d.as_ascii(), again.as_ascii());
            prop_assert_eq!(d.as_ascii(), d.as_ascii().to_lowercase());
        }
    }
}

// ---------------------------------------------------------------------------
// Bitmap metric axioms
// ---------------------------------------------------------------------------

fn arb_bitmap() -> impl Strategy<Value = Bitmap> {
    (any::<u64>(), 3usize..7).prop_map(|(seed, strokes)| {
        stroke_glyph(seed, Region::LETTER, strokes)
    })
}

proptest! {
    /// Δ is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn delta_is_a_metric(a in arb_bitmap(), b in arb_bitmap(), c in arb_bitmap()) {
        prop_assert_eq!(a.delta(&a), 0);
        prop_assert_eq!(a.delta(&b), b.delta(&a));
        prop_assert!(a.delta(&c) <= a.delta(&b) + b.delta(&c));
    }

    /// Perturbing by n moves Δ by exactly n.
    #[test]
    fn perturb_is_exact(a in arb_bitmap(), seed in any::<u64>(), n in 1u32..8) {
        let p = perturb(a, seed, n);
        prop_assert_eq!(a.delta(&p), n);
    }

    /// The banded-signature pigeonhole: Δ ≤ k ⇒ some band of k+1 matches.
    #[test]
    fn band_signatures_never_miss(a in arb_bitmap(), seed in any::<u64>(), n in 0u32..5) {
        let b = if n == 0 { a } else { perturb(a, seed, n) };
        let bands = 5;
        prop_assert!(a.delta(&b) <= 4);
        let sa = a.band_signatures(bands);
        let sb = b.band_signatures(bands);
        prop_assert!(sa.iter().zip(&sb).any(|(x, y)| x == y));
    }

    /// PSNR decreases monotonically with Δ (paper §3.3 relation).
    #[test]
    fn psnr_monotone(a in arb_bitmap(), seed in any::<u64>(), n in 1u32..6) {
        use shamfinder::glyph::metrics::psnr;
        let near = perturb(a, seed, n);
        let far = perturb(a, seed.wrapping_add(1), n + 4);
        prop_assert!(psnr(&a, &near) > psnr(&a, &far));
    }
}

// ---------------------------------------------------------------------------
// Zone round-trips
// ---------------------------------------------------------------------------

proptest! {
    /// Zones serialise and re-parse identically for arbitrary A records.
    #[test]
    fn zone_round_trip(
        names in proptest::collection::vec("[a-z]{3,12}", 1..20),
        octet in 1u8..250,
    ) {
        use shamfinder::dns::{parse, RecordData, ResourceRecord, Zone};
        let records: Vec<ResourceRecord> = names
            .iter()
            .map(|n| ResourceRecord {
                name: DomainName::parse(&format!("{n}.com")).unwrap(),
                ttl: 3600,
                data: RecordData::A(std::net::Ipv4Addr::new(192, 0, 2, octet)),
            })
            .collect();
        let zone = Zone { origin: "com".into(), default_ttl: 3600, records };
        let text = zone.to_text();
        let parsed = parse(&text, "com").unwrap();
        prop_assert_eq!(parsed.records, zone.records);
    }
}

// ---------------------------------------------------------------------------
// Detection invariants
// ---------------------------------------------------------------------------

fn small_framework(references: Vec<String>) -> Framework {
    let font = SynthUnifont::v12();
    let simchar = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    )
    .db;
    Framework::new(simchar, UcDatabase::embedded(), references, "com")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A homograph planted by substituting Cyrillic lookalikes is always
    /// detected against its reference, and the detection records the
    /// correct positions.
    #[test]
    fn planted_homograph_always_detected(
        stem in "[acepoxys]{4,12}",
        flip_mask in 1u16..256,
    ) {
        let subs: std::collections::HashMap<char, char> = [
            ('a', 'а'), ('c', 'с'), ('e', 'е'), ('p', 'р'),
            ('o', 'о'), ('x', 'х'), ('y', 'у'), ('s', 'ѕ'),
        ]
        .into_iter()
        .collect();

        let chars: Vec<char> = stem.chars().collect();
        let mut spoof = chars.clone();
        let mut flipped = Vec::new();
        for (i, c) in chars.iter().enumerate() {
            if flip_mask & (1 << (i % 16)) != 0 {
                spoof[i] = subs[c];
                flipped.push(i);
            }
        }
        prop_assume!(!flipped.is_empty());
        let spoof: String = spoof.into_iter().collect();

        let fw = small_framework(vec![stem.clone()]);
        let ace = shamfinder::punycode::ace::to_ascii(&spoof).unwrap();
        let corpus = vec![DomainName::parse(&format!("{ace}.com")).unwrap()];
        let report = fw.run(&corpus);

        prop_assert_eq!(report.detections.len(), 1, "spoof {} missed", spoof);
        let det = &report.detections[0];
        prop_assert_eq!(&*det.reference, stem.as_str());
        let positions: Vec<usize> =
            det.substitutions.iter().map(|s| s.position).collect();
        prop_assert_eq!(positions, flipped);
    }

    /// Detections preserve character length and revert to the reference.
    #[test]
    fn detected_implies_length_and_revert(stem in "[aceo]{3,8}") {
        let spoof: String = stem
            .chars()
            .map(|c| match c {
                'a' => 'а',
                'c' => 'с',
                'e' => 'е',
                _ => 'о',
            })
            .collect();
        let fw = small_framework(vec![stem.clone()]);
        let ace = shamfinder::punycode::ace::to_ascii(&spoof).unwrap();
        let corpus = vec![DomainName::parse(&format!("{ace}.com")).unwrap()];
        let report = fw.run(&corpus);
        prop_assert_eq!(report.detections.len(), 1);

        let det = &report.detections[0];
        prop_assert_eq!(det.idn_unicode.chars().count(), stem.chars().count());

        let db = fw.detector().db();
        let reverted = shamfinder::core::revert_stem(db, &det.idn_unicode);
        prop_assert_eq!(reverted.stem(), stem.as_str());
    }

    /// Random ASCII names are never reported as homographs of themselves.
    #[test]
    fn no_self_detection(stem in "[a-z]{3,12}") {
        let fw = small_framework(vec![stem.clone()]);
        let corpus = vec![DomainName::parse(&format!("{stem}.com")).unwrap()];
        let report = fw.run(&corpus);
        prop_assert!(report.detections.is_empty());
    }

    /// The canonical-closure index is exact on lookalike corpora: every
    /// detection the naive all-pairs sweep finds, `CanonicalClosure`
    /// finds too, and vice versa — whatever mix of clean stems, partial
    /// spoofs and full spoofs is thrown at it. (The adversarial
    /// non-transitive case lives in
    /// `crates/core/tests/closure_equivalence.rs`.)
    #[test]
    fn canonical_closure_agrees_with_naive(
        stems in proptest::collection::vec("[acepoxys]{3,10}", 2..6),
        masks in proptest::collection::vec(any::<u16>(), 2..6),
    ) {
        let subs: std::collections::HashMap<char, char> = [
            ('a', 'а'), ('c', 'с'), ('e', 'е'), ('p', 'р'),
            ('o', 'о'), ('x', 'х'), ('y', 'у'), ('s', 'ѕ'),
        ]
        .into_iter()
        .collect();

        // References: the clean stems. Corpus: one spoof per stem with
        // substitutions at mask positions (possibly none → identical).
        let mut idns = Vec::new();
        for (stem, mask) in stems.iter().zip(&masks) {
            let spoof: String = stem
                .chars()
                .enumerate()
                .map(|(i, c)| if mask & (1 << (i % 16)) != 0 { subs[&c] } else { c })
                .collect();
            let ace = shamfinder::punycode::ace::to_ascii(&spoof).unwrap();
            idns.push((spoof, format!("{ace}.com")));
        }

        let fw = small_framework(stems.clone());
        let d = fw.detector();
        let key = |v: Vec<Detection>| {
            let mut k: Vec<(String, String)> = v
                .into_iter()
                .map(|h| (h.idn_ascii, h.reference.to_string()))
                .collect();
            k.sort();
            k
        };
        let naive = key(d.detect(&idns, DbSelection::Union, Indexing::Naive));
        let canon = key(d.detect(&idns, DbSelection::Union, Indexing::CanonicalClosure));
        prop_assert_eq!(naive, canon);
    }
}

// ---------------------------------------------------------------------------
// Confusables skeletons
// ---------------------------------------------------------------------------

proptest! {
    /// Skeletons are idempotent: skeleton(skeleton(s)) == skeleton(s).
    #[test]
    fn skeleton_idempotent(s in "\\PC{0,24}") {
        let uc = UcDatabase::embedded();
        let once = uc.skeleton(&s);
        let twice = uc.skeleton(&once);
        prop_assert_eq!(once, twice);
    }
}
