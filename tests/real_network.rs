//! Integration tests that exercise the *real* network code paths — the
//! TCP port prober and the HTTP client — against in-process servers, and
//! feed their observations through the same classifiers the simulation
//! uses.

use shamfinder::dns::{scan, PortProber, ProbeOutcome, TcpProber};
use shamfinder::web::{
    classify, classify_redirect, Blacklist, Category, Client, FetchOutcome, Observation,
    RedirectKind, Route, TestServer,
};
use std::collections::HashMap;
use std::net::TcpListener;
use std::time::Duration;

fn client_for(server: &TestServer, host: &str) -> Client {
    let mut c = Client::default();
    c.hosts_override.insert(host.to_string(), server.addr());
    c
}

#[test]
#[cfg_attr(not(feature = "real-network"), ignore = "opens loopback sockets; run with --features real-network or -- --include-ignored")]
fn tcp_prober_distinguishes_open_and_closed() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for s in listener.incoming() {
            drop(s);
        }
    });

    let mut prober = TcpProber { timeout: Duration::from_millis(300), ..Default::default() };
    prober.hosts_override.insert("homograph.test".into(), addr);

    assert_eq!(prober.probe("homograph.test", addr.port()), ProbeOutcome::Open);
    let closed = prober.probe("127.0.0.1", 1);
    assert!(matches!(closed, ProbeOutcome::Closed | ProbeOutcome::Timeout));
}

#[test]
#[cfg_attr(not(feature = "real-network"), ignore = "opens loopback sockets; run with --features real-network or -- --include-ignored")]
fn threaded_scan_over_real_sockets() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for s in listener.incoming() {
            drop(s);
        }
    });
    let mut prober = TcpProber { timeout: Duration::from_millis(300), ..Default::default() };
    for host in ["a.test", "b.test", "c.test"] {
        prober.hosts_override.insert(host.into(), addr);
    }
    let hosts: Vec<String> = ["a.test", "b.test", "c.test"].iter().map(|s| s.to_string()).collect();
    let scans = scan(&prober, &hosts, &[addr.port()], 3);
    assert_eq!(scans.len(), 3);
    assert!(scans.iter().all(|s| s.any_open()));
}

#[test]
#[cfg_attr(not(feature = "real-network"), ignore = "opens loopback sockets; run with --features real-network or -- --include-ignored")]
fn http_crawl_classifies_a_parking_page() {
    let mut routes = HashMap::new();
    routes.insert(
        "/".to_string(),
        Route::ok("Welcome! Related Links — Sponsored Listings — Privacy"),
    );
    let server = TestServer::spawn(routes).unwrap();
    let client = client_for(&server, "xn--ggle-55da.com");

    let resp = client.get("xn--ggle-55da.com", "/").unwrap();
    assert_eq!(resp.status, 200);

    // Feed the real HTTP observation through the classifier.
    let obs = Observation {
        ns_hosts: vec!["ns1.generic-hosting.example".into()],
        fetch: FetchOutcome::Page { body: String::from_utf8_lossy(&resp.body).into_owned() },
    };
    assert_eq!(classify(&obs), Category::DomainParking);
}

#[test]
#[cfg_attr(not(feature = "real-network"), ignore = "opens loopback sockets; run with --features real-network or -- --include-ignored")]
fn http_redirect_chain_feeds_redirect_classifier() {
    // A homograph of google.com that redirects to the brand itself
    // (defensive registration) — over real sockets.
    let mut routes = HashMap::new();
    routes.insert("/".to_string(), Route::redirect("http://www.google.com/"));
    let server = TestServer::spawn(routes).unwrap();
    let client = client_for(&server, "xn--ggle-55da.com");

    let resp = client.get("xn--ggle-55da.com", "/").unwrap();
    assert!(resp.is_redirect());
    let target_host = resp
        .location()
        .and_then(|l| l.strip_prefix("http://"))
        .and_then(|l| l.split('/').next())
        .unwrap();

    let feeds = vec![Blacklist::new("hpHosts")];
    assert_eq!(
        classify_redirect("google.com", target_host, &feeds),
        RedirectKind::BrandProtection
    );

    // The same chain against a blacklisted lander flips to malicious.
    let mut bl = Blacklist::new("hpHosts");
    bl.add("evil-lander.com");
    assert_eq!(
        classify_redirect("google.com", "evil-lander.com", &[bl]),
        RedirectKind::Malicious
    );
}

#[test]
#[cfg_attr(not(feature = "real-network"), ignore = "opens loopback sockets; run with --features real-network or -- --include-ignored")]
fn http_error_paths_classify_as_error() {
    // Nothing listens on this address: connection refused → crawl error.
    let client = Client { timeout: Duration::from_millis(200), ..Default::default() };
    let result = client.get("127.0.0.1", "/"); // port 80 on loopback
    if result.is_err() {
        let obs = Observation {
            ns_hosts: vec!["ns1.generic.example".into()],
            fetch: FetchOutcome::Failed,
        };
        assert_eq!(classify(&obs), Category::Error);
    }
}

#[test]
#[cfg_attr(not(feature = "real-network"), ignore = "opens loopback sockets; run with --features real-network or -- --include-ignored")]
fn full_chain_detect_then_crawl() {
    // Detect a homograph with the framework, then "visit" it over a real
    // socket and classify the result — the paper's §6 pipeline in
    // miniature, minus the simulation.
    use shamfinder::prelude::*;

    let font = SynthUnifont::v12();
    let simchar = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic"]),
            ..BuildConfig::default()
        },
    )
    .db;
    let fw = Framework::new(
        simchar,
        UcDatabase::embedded(),
        vec!["google".to_string()],
        "com",
    );
    let corpus = vec![DomainName::parse("gооgle.com").unwrap()];
    let report = fw.run(&corpus);
    assert_eq!(report.detections.len(), 1);
    let ace = &report.detections[0].idn_ascii;

    let mut routes = HashMap::new();
    routes.insert("/".to_string(), Route::ok("This premium domain is for sale! Buy now."));
    let server = TestServer::spawn(routes).unwrap();
    let client = client_for(&server, ace);
    let resp = client.get(ace, "/").unwrap();
    let obs = Observation {
        ns_hosts: vec!["ns1.registrar.example".into()],
        fetch: FetchOutcome::Page { body: String::from_utf8_lossy(&resp.body).into_owned() },
    };
    assert_eq!(classify(&obs), Category::ForSale);
}
