//! Vendored stand-in for `proptest` (no crates.io access in the build
//! environment). Implements the subset the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * strategies: regex-class string patterns (`"[a-z]{3,12}"`,
//!   `"\\PC{0,40}"`), integer ranges, `any::<T>()`, tuples,
//!   [`strategy::Strategy::prop_map`], and [`collection::vec()`];
//! * a deterministic [`test_runner::TestRunner`] seeded per test name,
//!   so failures reproduce across runs.
//!
//! Unlike real proptest there is no shrinking: a failing case reports
//! the case number and the assertion message. The generator is
//! deliberately seeded from the test name so reruns explore the same
//! cases — determinism over coverage, the right trade for CI.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Produces values of type `Value` from a random stream.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    start + ((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// String strategies are written as regex-like patterns:
    /// a sequence of `[class]` / `\PC` units, each with an optional
    /// `{m,n}` repetition. This covers every pattern in the workspace.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let units = crate::pattern::parse(self)
                .unwrap_or_else(|e| panic!("bad string strategy {self:?}: {e}"));
            let mut out = String::new();
            for unit in &units {
                unit.generate_into(rng, &mut out);
            }
            out
        }
    }

    /// The strategy for [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any!(u8, u16, u32, u64, usize);
}

/// `any::<T>()`: the canonical "anything of type T" strategy.
pub mod arbitrary {
    use crate::strategy::Any;

    /// Returns the full-domain strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Regex-class pattern parsing for string strategies.
mod pattern {
    use crate::test_runner::TestRng;

    /// One pattern unit plus its repetition bounds.
    pub struct Unit {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Unit {
        pub fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
            let count = if self.min == self.max {
                self.min
            } else {
                self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
            };
            for _ in 0..count {
                let idx = (rng.next_u64() as usize) % self.chars.len();
                out.push(self.chars[idx]);
            }
        }
    }

    /// A cross-script pool of assigned, non-control characters standing
    /// in for proptest's `\PC` (any char outside Unicode category C).
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = Vec::new();
        let ranges: &[(u32, u32)] = &[
            (0x0020, 0x007E), // ASCII printable
            (0x00A1, 0x00FF), // Latin-1 punctuation and letters
            (0x0100, 0x0130), // Latin Extended-A
            (0x0391, 0x03A9), // Greek capitals
            (0x03B1, 0x03C9), // Greek smalls
            (0x0410, 0x044F), // Cyrillic
            (0x0531, 0x0556), // Armenian capitals
            (0x0561, 0x0586), // Armenian smalls
            (0x05D0, 0x05EA), // Hebrew
            (0x0621, 0x063A), // Arabic
            (0x4E00, 0x4E3F), // CJK ideographs (sample)
            (0xAC00, 0xAC3F), // Hangul syllables (sample)
            (0x1F600, 0x1F60F), // emoji (astral plane coverage)
        ];
        for &(lo, hi) in ranges {
            for v in lo..=hi {
                if let Some(c) = char::from_u32(v) {
                    pool.push(c);
                }
            }
        }
        pool.push('→');
        pool.push('Δ');
        pool
    }

    pub fn parse(pattern: &str) -> Result<Vec<Unit>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                    i += 3;
                    printable_pool()
                }
                '[' => {
                    i += 1;
                    let mut class = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            match chars.get(i) {
                                Some('n') => '\n',
                                Some('t') => '\t',
                                Some('r') => '\r',
                                Some(&c) => c,
                                None => return Err("dangling escape".into()),
                            }
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // Range like `a-z` (but `-` before `]` is literal).
                        if chars.get(i) == Some(&'-')
                            && chars.get(i + 1).is_some_and(|&n| n != ']')
                        {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                match chars.get(i) {
                                    Some('n') => '\n',
                                    Some('t') => '\t',
                                    Some(&c) => c,
                                    None => return Err("dangling escape".into()),
                                }
                            } else {
                                chars[i]
                            };
                            i += 1;
                            for v in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(v) {
                                    class.push(ch);
                                }
                            }
                        } else {
                            class.push(c);
                        }
                    }
                    if i >= chars.len() {
                        return Err("unterminated class".into());
                    }
                    i += 1; // past ']'
                    class
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            if class.is_empty() {
                return Err("empty character class".into());
            }
            // Optional {m,n} / {n} quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or("unterminated quantifier")?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().map_err(|e| format!("{e}"))?,
                        n.trim().parse().map_err(|e| format!("{e}"))?,
                    ),
                    None => {
                        let n = body.trim().parse().map_err(|e| format!("{e}"))?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(format!("bad quantifier {{{min},{max}}}"));
            }
            units.push(Unit { chars: class, min, max });
        }
        Ok(units)
    }
}

/// Runner, config, and case-level error plumbing.
pub mod test_runner {
    /// Per-test configuration. Only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs out; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic random stream (splitmix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded directly; used by this crate's own tests.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Drives one property over many generated cases.
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
        name: &'static str,
    }

    impl TestRunner {
        /// A runner whose stream is a pure function of the test name, so
        /// every run explores the same cases.
        pub fn new(config: Config, name: &'static str) -> TestRunner {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner { config, rng: TestRng { state: seed }, name }
        }

        /// Runs the property until `config.cases` cases pass, a case
        /// fails (panic), or too many cases are rejected (panic).
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let max_rejects = self.config.cases.saturating_mul(20).max(1000);
            while accepted < self.config.cases {
                match case(&mut self.rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "property {}: too many rejected cases ({rejected}) — \
                                 prop_assume! condition is too strict",
                                self.name
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {} (after {rejected} rejects): {msg}",
                            self.name,
                            accepted + 1
                        );
                    }
                }
            }
        }
    }
}

/// Everything a test file needs with one `use`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
///
/// The argument list is captured as a single token tree and re-parsed by
/// [`__prop_bindings!`] — `macro_rules` follow-set rules forbid an
/// `$strat:expr` fragment directly before the closing parenthesis, so
/// the parenthesized list must cross a macro boundary to be destructured.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config $cfg:tt] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg $($rest)*);
    };
    (@with_config $cfg:tt $(
        $(#[$meta:meta])*
        fn $name:ident $args:tt $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            runner.run(|rng| {
                $crate::__prop_bindings!(rng, $args);
                #[allow(unused_mut)]
                let mut body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                body()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Expands `(a in strat_a, b in strat_b)` into `let` bindings drawing
/// from each strategy. Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bindings {
    ($rng:ident, ($($inner:tt)*)) => {
        $crate::__prop_bindings!(@unwrapped $rng, $($inner)*);
    };
    (@unwrapped $rng:ident, $($arg:ident in $strat:expr),+ $(,)?) => {
        $(let $arg = $crate::strategy::Strategy::generate(&($strat), $rng);)+
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(0x5EED)
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{3,12}".generate(&mut r);
            assert!((3..=12).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "[ -~\\n;#→]{0,30}".generate(&mut r);
            assert!(t.chars().count() <= 30);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == ';' || c == '#' || c == '→'));

            let u = "\\PC{0,40}".generate(&mut r);
            assert!(u.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn tuple_map_and_vec_strategies_compose() {
        let mut r = rng();
        let strat = (any::<u64>(), 3usize..7).prop_map(|(seed, n)| (seed % 10, n));
        for _ in 0..100 {
            let (s, n) = strat.generate(&mut r);
            assert!(s < 10 && (3..7).contains(&n));
        }
        let v = crate::collection::vec(1u32..5, 2..4).generate(&mut r);
        assert!((2..4).contains(&v.len()));
        assert!(v.iter().all(|&x| (1..5).contains(&x)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generation, assume, and assertions.
        #[test]
        fn macro_pipeline_works(x in 1u32..100, s in "[ab]{1,4}") {
            prop_assume!(x != 55);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
