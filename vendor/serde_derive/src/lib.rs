//! Vendored stand-in for `serde_derive`, written against only the
//! built-in `proc_macro` API (no `syn`/`quote`, which are unavailable in
//! the offline build environment).
//!
//! The derives target the simplified data model of the vendored `serde`
//! crate: `Serialize::serialize(&self) -> serde::Value` and
//! `Deserialize::deserialize(&serde::Value) -> Result<Self, serde::Error>`.
//! Supported shapes cover everything the workspace derives:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which
//!   are omitted on serialize and filled from `Default` on deserialize);
//! * tuple structs;
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   like real serde: `"Variant"`, `{"Variant": [..]}`, `{"Variant": {..}}`).
//!
//! Generics are intentionally unsupported — no derived type in the
//! workspace is generic — and hitting one produces a compile error
//! rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (None for tuple fields) and whether it is
/// marked `#[serde(skip)]`.
struct Field {
    name: Option<String>,
    skip: bool,
}

enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, U);`
    TupleStruct(Vec<Field>),
    /// `enum E { A, B(T), C { x: T } }`
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Splits a brace/paren group body into top-level comma-separated chunks.
/// Commas inside generic angle brackets (`BTreeMap<u32, Vec<u32>>`) are
/// not separators; angle brackets are plain `Punct`s, so depth must be
/// tracked by hand (a `>` preceded by `-` is a return arrow, not a
/// closer).
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                let is_arrow = matches!(
                    cur.last(),
                    Some(TokenTree::Punct(prev)) if prev.as_char() == '-'
                );
                if !is_arrow {
                    angle_depth -= 1;
                }
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consumes leading `#[...]` attributes from a token chunk, reporting
/// whether any of them is `#[serde(skip)]`.
fn strip_attrs(tokens: &mut Vec<TokenTree>) -> bool {
    let mut skip = false;
    loop {
        match tokens.first() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.remove(0);
                if let Some(TokenTree::Group(g)) = tokens.first() {
                    let body = g.stream().to_string().replace(' ', "");
                    if body.starts_with("serde(") && body.contains("skip") {
                        skip = true;
                    }
                    tokens.remove(0);
                }
            }
            _ => break,
        }
    }
    skip
}

/// Consumes a leading visibility qualifier (`pub`, `pub(crate)`, ...).
fn strip_vis(tokens: &mut Vec<TokenTree>) {
    if matches!(tokens.first(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.remove(0);
        if matches!(tokens.first(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.remove(0);
        }
    }
}

fn parse_named_fields(group_body: TokenStream) -> Vec<Field> {
    split_commas(group_body.into_iter().collect())
        .into_iter()
        .filter_map(|mut chunk| {
            let skip = strip_attrs(&mut chunk);
            strip_vis(&mut chunk);
            match chunk.first() {
                Some(TokenTree::Ident(name)) => Some(Field { name: Some(name.to_string()), skip }),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_fields(group_body: TokenStream) -> Vec<Field> {
    split_commas(group_body.into_iter().collect())
        .into_iter()
        .map(|mut chunk| {
            let skip = strip_attrs(&mut chunk);
            Field { name: None, skip }
        })
        .collect()
}

/// Parses the derive input down to (type name, shape).
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    strip_attrs(&mut tokens);
    strip_vis(&mut tokens);

    let kind = match tokens.first() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    tokens.remove(0);
    let name = match tokens.first() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected type name".into()),
    };
    tokens.remove(0);

    if matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive on generic type `{name}` is not supported by the vendored serde_derive"));
    }

    match (kind.as_str(), tokens.first()) {
        ("struct", None) => Ok((name, Shape::UnitStruct)),
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::NamedStruct(parse_named_fields(g.stream()))))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok((name, Shape::TupleStruct(parse_tuple_fields(g.stream()))))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = split_commas(g.stream().into_iter().collect())
                .into_iter()
                .filter_map(|mut chunk| {
                    strip_attrs(&mut chunk);
                    let vname = match chunk.first() {
                        Some(TokenTree::Ident(i)) => i.to_string(),
                        _ => return None,
                    };
                    chunk.remove(0);
                    let shape = match chunk.first() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantShape::Named(parse_named_fields(g.stream()))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            VariantShape::Tuple(parse_tuple_fields(g.stream()).len())
                        }
                        _ => VariantShape::Unit,
                    };
                    Some((vname, shape))
                })
                .collect();
            Ok((name, Shape::Enum(variants)))
        }
        _ => Err(format!("unsupported item shape for `{name}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(v) => v,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let mut s = String::from("{ let mut m = ::std::vec::Vec::new();\n");
            for f in fields {
                if f.skip {
                    continue;
                }
                let fname = f.name.as_ref().unwrap();
                s.push_str(&format!(
                    "m.push(({fname:?}.to_string(), ::serde::Serialize::serialize(&self.{fname})));\n"
                ));
            }
            s.push_str("::serde::Value::Map(m) }");
            s
        }
        Shape::TupleStruct(fields) => {
            let mut s = String::from("{ let mut v = ::std::vec::Vec::new();\n");
            for (i, f) in fields.iter().enumerate() {
                if !f.skip {
                    s.push_str(&format!("v.push(::serde::Serialize::serialize(&self.{i}));\n"));
                }
            }
            s.push_str("::serde::Value::Seq(v) }");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let pushes: String = binds
                            .iter()
                            .map(|b| format!("v.push(::serde::Serialize::serialize({b}));\n"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({bl}) => {{ let mut v = ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Seq(v))]) }}\n",
                            bl = binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let names: Vec<&String> =
                            fields.iter().filter_map(|f| f.name.as_ref()).collect();
                        let pushes: String = names
                            .iter()
                            .map(|n| {
                                format!(
                                    "m.push(({n:?}.to_string(), ::serde::Serialize::serialize({n})));\n"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bl} }} => {{ let mut m = ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(m))]) }}\n",
                            bl = names.iter().map(|n| n.as_str()).collect::<Vec<_>>().join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}\n"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(v) => v,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = f.name.as_ref().unwrap();
                if f.skip {
                    inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{fname}: ::serde::Deserialize::deserialize(m.field({fname:?})?)?,\n"
                    ));
                }
            }
            format!(
                "let m = value.as_struct_map().map_err(|e| e.within({:?}))?;\n\
                 Ok({name} {{ {inits} }})",
                name
            )
        }
        Shape::TupleStruct(fields) => {
            let n = fields.len();
            let mut inits = String::new();
            for i in 0..n {
                inits.push_str(&format!("::serde::Deserialize::deserialize(&s[{i}])?,\n"));
            }
            format!(
                "let s = value.as_seq_of(Some({n})).map_err(|e| e.within({name:?}))?;\n\
                 Ok({name}({inits}))"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => return Ok({name}::{vname}),\n"));
                    }
                    VariantShape::Tuple(n) => {
                        let mut inits = String::new();
                        for i in 0..*n {
                            inits.push_str(&format!(
                                "::serde::Deserialize::deserialize(&s[{i}])?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{ let s = payload.as_seq_of(Some({n}))?; \
                             return Ok({name}::{vname}({inits})); }}\n"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let fname = f.name.as_ref().unwrap();
                            if f.skip {
                                inits.push_str(&format!(
                                    "{fname}: ::std::default::Default::default(),\n"
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{fname}: ::serde::Deserialize::deserialize(m.field({fname:?})?)?,\n"
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{ let m = payload.as_struct_map()?; \
                             return Ok({name}::{vname} {{ {inits} }}); }}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(tag) = value {{\n\
                     match tag.as_str() {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let Ok((tag, payload)) = value.as_enum_tag() {{\n\
                     match tag {{ {tagged_arms} _ => {{}} }}\n\
                 }}\n\
                 Err(::serde::Error::expected(concat!(\"a valid \", {name:?}, \" variant\")))"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}
