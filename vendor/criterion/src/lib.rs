//! Vendored stand-in for `criterion` (no crates.io access in the build
//! environment). Provides the API subset the workspace benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`, and
//! `Bencher::iter` — backed by a simple median-of-samples wall-clock
//! timer instead of criterion's full statistical machinery.
//!
//! Each benchmark prints one line:
//! `bench <group>/<id> ... median 1.234 ms/iter (throughput 16.2 Melem/s)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.default_sample_size, None, f);
        self
    }
}

/// Units for reporting rates alongside times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream writes reports here; this is a no-op).
    pub fn finish(self) {}
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, storing one duration sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, then the timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// True when the binary was invoked as `cargo bench -- --test` (cargo's
/// "run each benchmark once to check it works" convention): each bench
/// then takes a single sample, so CI can smoke-test the bench suite
/// without paying for full measurement runs.
pub fn dry_run_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let sample_size = if dry_run_mode() { 1 } else { sample_size };
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label} ... no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({} elem/s)", si(per_sec(n))),
            Throughput::Bytes(n) => format!(" ({}B/s)", si(per_sec(n))),
        }
    });
    println!(
        "bench {label} ... median {}/iter{}",
        fmt_duration(median),
        rate.unwrap_or_default()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.2} ")
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self_test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 4, "warmup + samples should have run, got {ran}");
    }
}
