//! Vendored stand-in for the `bytes` crate (no crates.io access in the
//! build environment). [`BytesMut`] is a thin wrapper over `Vec<u8>`,
//! and [`Buf`]/[`BufMut`] provide the big-endian cursor methods the DNS
//! wire codec uses. Network-byte-order semantics match upstream.

use std::ops::{Deref, DerefMut};

/// Reading side: a cursor over bytes. Implemented for `&[u8]`, where
/// reads advance the slice itself (as upstream does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `n` bytes into `dst`'s prefix and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte. Panics when empty, matching upstream.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Writing side: append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer (here: a plain `Vec<u8>` in disguise).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Copies the contents out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_slice(b"ok");
        assert_eq!(buf.len(), 9);

        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u16(), 0xBEEF);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1];
        let _ = rd.get_u16();
    }
}
