//! Vendored stand-in for `rayon` (no crates.io access in the build
//! environment) — a real data-parallel executor since PR 2, replacing
//! the earlier sequential-alias shim.
//!
//! # Execution model
//!
//! Every parallel pipeline bottoms out in an *indexed base* (a slice, a
//! collected `Vec`, or a range). [`ParallelIterator::collect`] splits the
//! base index space `[0, n)` into contiguous chunks (about four per
//! worker, never smaller than [`ParallelIterator::min_len`], tunable via
//! [`IndexedParallelIterator::with_min_len`]), then drives the chunks
//! over a **persistent, lazily-started worker pool**. The calling thread
//! always participates; pool workers receive one type-erased job handle
//! each through a channel and join the same chunk-claiming loop. Chunks
//! are claimed from a shared atomic counter (cheap work splitting — no
//! stealing, which is enough because chunks outnumber workers), each
//! worker runs the composed adapter pipeline over its chunk and buffers
//! the produced items in a per-chunk `Vec`; once every chunk is done the
//! buffers are concatenated in chunk order.
//!
//! Pool workers are spawned on the first multi-threaded call and then
//! parked on the job channel — a streaming server dispatching thousands
//! of multi-shard batches pays the thread-spawn cost once, not per
//! call. The scoped-borrow semantics of the old per-call
//! `std::thread::scope` executor are preserved by a cancellation
//! protocol (see the pool section below): a parallel call never
//! returns while any pool worker can still touch its borrowed
//! pipeline.
//!
//! # Determinism
//!
//! Because chunks partition the base in order and are merged in order,
//! the collected output is **bit-identical to a sequential run at every
//! thread count** — ordered collects (`Vec`) and unordered ones
//! (`HashSet`) alike. The only nondeterminism is which OS thread runs
//! which chunk, which is unobservable in the result.
//!
//! The worker count comes from, in precedence order:
//! [`set_thread_override`] (used by benches and tests), the
//! `SHAM_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. A count of 1 runs the whole
//! pipeline inline on the calling thread — no pool, no spawns, fully
//! deterministic scheduling — which is what single-core CI gets by
//! default. [`set_thread_override`] also *resizes* the pool: forcing a
//! smaller count synchronously retires surplus workers, and forcing 1
//! drains the pool entirely; growth stays lazy (the next parallel call
//! spawns what it needs). [`pool_size`] reports the live worker count.
//!
//! # Limits
//!
//! Chunks are fixed at claim time, so a pathologically skewed workload
//! (one chunk far more expensive than the rest) parallelises no better
//! than its largest chunk; oversplitting (4 chunks/worker) bounds that
//! loss. Adapter closures must be `Fn + Sync` (shared by reference
//! across workers) rather than rayon's equivalent bounds, and only the
//! API subset the workspace uses is provided: `par_iter` on slices,
//! `into_par_iter` on any `IntoIterator` (ranges, `Vec`, sets),
//! `map`/`filter`/`filter_map`/`flat_map_iter`/`copied`/`enumerate`/
//! `with_min_len`/`collect`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Process-wide worker-count override; 0 means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count for subsequent parallel calls (`None` returns
/// to the default resolution). Benches use this to measure 1-thread vs
/// N-thread runs; tests use it to exercise multi-thread execution on
/// single-core machines.
///
/// Forcing a count also resizes the persistent pool: a parallel call at
/// `n` threads uses the caller plus `n - 1` pool workers, so forcing a
/// *smaller* `n` synchronously retires the surplus workers (`Some(1)`
/// drains the pool entirely — the inline path needs no pool at all).
/// Growing is left lazy: the next parallel call spawns what it needs.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
    if let Some(n) = threads {
        resize_pool(n.saturating_sub(1));
    }
}

/// RAII worker-count override: sets the count on construction and
/// restores the previous value on drop, so a panicking test or bench
/// cannot leak a forced thread count into the rest of the process.
pub struct ThreadOverride {
    prev: usize,
}

impl ThreadOverride {
    /// Forces `threads` workers until the guard drops, resizing the
    /// pool down (like [`set_thread_override`]) when the forced count
    /// needs fewer workers than are alive.
    pub fn new(threads: usize) -> ThreadOverride {
        let prev = THREAD_OVERRIDE.swap(threads, Ordering::SeqCst);
        resize_pool(threads.saturating_sub(1));
        ThreadOverride { prev }
    }
}

impl Drop for ThreadOverride {
    fn drop(&mut self) {
        // Route through `set_thread_override` so restoring a smaller
        // previous count also resizes the pool back down.
        set_thread_override((self.prev != 0).then_some(self.prev));
    }
}

/// The worker count parallel calls will use right now: the
/// [`set_thread_override`] value if set, else `SHAM_THREADS` from the
/// environment, else the machine's available parallelism.
///
/// The environment half is resolved once and cached: `SHAM_THREADS`
/// is process configuration, and an `env::var` plus
/// `available_parallelism` per query is measurable overhead for
/// callers that dispatch many small batches (the streaming detection
/// session queries this per batch). The override fast path stays a
/// single atomic load, so tests and benches can still flip the count
/// at any time.
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced != 0 {
        return forced;
    }
    static ENV_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("SHAM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

// ---------------------------------------------------------------------
// Pool telemetry.
//
// A handful of process-wide relaxed atomics, bumped only on state
// transitions the pool already performs (job submit, dequeue, body
// enter/leave, park/unpark) — never inside the chunk-claiming loop, so
// the per-chunk fast path is untouched and the 1-thread inline path
// never sees a single telemetry instruction. Reading is snapshot-on-
// read: `pool_stats` loads each counter individually, so a snapshot is
// internally consistent per counter (each is monotone) but not a
// linearised cross-counter view — good enough for scheduling and
// ledgers, free for the workers.
// ---------------------------------------------------------------------

/// The process-wide telemetry counters (all relaxed; see module note).
struct Telemetry {
    /// `Run` messages sent to the pool channel.
    jobs_submitted: AtomicU64,
    /// `Run` messages taken off the channel by a worker.
    jobs_dequeued: AtomicU64,
    /// Dequeued jobs whose body actually ran (not cancelled).
    jobs_executed: AtomicU64,
    /// Dequeued jobs discarded because the call had already finished.
    jobs_discarded: AtomicU64,
    /// Executed jobs whose body panicked.
    jobs_panicked: AtomicU64,
    /// Nanoseconds workers spent inside job bodies.
    busy_nanos: AtomicU64,
    /// Nanoseconds workers spent parked on the job channel.
    parked_nanos: AtomicU64,
    /// Workers currently inside a job body (gauge; never suspended so
    /// the adaptive scheduler always sees the true occupancy).
    busy_workers: AtomicUsize,
}

static TELEMETRY: Telemetry = Telemetry {
    jobs_submitted: AtomicU64::new(0),
    jobs_dequeued: AtomicU64::new(0),
    jobs_executed: AtomicU64::new(0),
    jobs_discarded: AtomicU64::new(0),
    jobs_panicked: AtomicU64::new(0),
    busy_nanos: AtomicU64::new(0),
    parked_nanos: AtomicU64::new(0),
    busy_workers: AtomicUsize::new(0),
};

/// Bench-only switch: `true` pauses every cumulative counter (the
/// `busy_workers` gauge stays live — scheduling depends on it).
static TELEMETRY_SUSPENDED: AtomicBool = AtomicBool::new(false);

/// Suspends (or resumes) the cumulative telemetry counters. Benchmark
/// plumbing for measuring the counters-on vs counters-off overhead
/// pair; production code leaves telemetry on. Toggling while jobs are
/// in flight can desynchronise the submitted/dequeued identities, so
/// flip it only around a quiescent pool.
#[doc(hidden)]
pub fn set_telemetry_suspended(suspended: bool) {
    TELEMETRY_SUSPENDED.store(suspended, Ordering::SeqCst);
}

#[inline]
fn telemetry_count(counter: &AtomicU64) {
    if !TELEMETRY_SUSPENDED.load(Ordering::Relaxed) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[inline]
fn telemetry_add(counter: &AtomicU64, delta: u64) {
    if !TELEMETRY_SUSPENDED.load(Ordering::Relaxed) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }
}

#[inline]
fn telemetry_clock() -> Option<Instant> {
    (!TELEMETRY_SUSPENDED.load(Ordering::Relaxed)).then(Instant::now)
}

/// Snapshot of the pool telemetry counters. Each field is read
/// individually (snapshot-on-read); cumulative counters are monotone
/// for the life of the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Live pool workers (the caller of a parallel call is one more).
    pub workers: usize,
    /// Workers currently inside a job body.
    pub busy_workers: usize,
    /// Submitted-but-not-yet-dequeued job handles on the channel.
    pub queue_depth: usize,
    /// Job handles ever submitted to the channel.
    pub jobs_submitted: u64,
    /// Job handles ever taken off the channel.
    pub jobs_dequeued: u64,
    /// Dequeued jobs whose body ran.
    pub jobs_executed: u64,
    /// Dequeued jobs discarded after their call had finished.
    pub jobs_discarded: u64,
    /// Executed jobs whose body panicked.
    pub jobs_panicked: u64,
    /// Total nanoseconds workers spent inside job bodies.
    pub busy_nanos: u64,
    /// Total nanoseconds workers spent parked waiting for work.
    pub parked_nanos: u64,
}

impl PoolStats {
    /// Fraction of the pool that is currently committed: busy workers
    /// plus still-queued jobs over the live worker count, clamped to
    /// `[0, 1]`. Zero when the pool has no workers.
    pub fn occupancy(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            let committed = (self.busy_workers + self.queue_depth) as f64;
            (committed / self.workers as f64).min(1.0)
        }
    }
}

/// Reads the pool telemetry counters (snapshot-on-read, relaxed).
pub fn pool_stats() -> PoolStats {
    let submitted = TELEMETRY.jobs_submitted.load(Ordering::Relaxed);
    let dequeued = TELEMETRY.jobs_dequeued.load(Ordering::Relaxed);
    PoolStats {
        workers: pool_size(),
        busy_workers: TELEMETRY.busy_workers.load(Ordering::Relaxed),
        queue_depth: submitted.saturating_sub(dequeued) as usize,
        jobs_submitted: submitted,
        jobs_dequeued: dequeued,
        jobs_executed: TELEMETRY.jobs_executed.load(Ordering::Relaxed),
        jobs_discarded: TELEMETRY.jobs_discarded.load(Ordering::Relaxed),
        jobs_panicked: TELEMETRY.jobs_panicked.load(Ordering::Relaxed),
        busy_nanos: TELEMETRY.busy_nanos.load(Ordering::Relaxed),
        parked_nanos: TELEMETRY.parked_nanos.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Occupancy: the one telemetry reading the adaptive scheduler consumes,
// plus the test-only hook that forces it through a scripted sequence.
// Forced occupancy perturbs *partitioning decisions only* — the
// equivalence suites pin that outputs stay bit-identical regardless.
// ---------------------------------------------------------------------

/// Fast-path flag: is an occupancy override installed?
static OCC_ACTIVE: AtomicBool = AtomicBool::new(false);
/// Rotation cursor over the forced sequence.
static OCC_CURSOR: AtomicUsize = AtomicUsize::new(0);

fn occ_slot() -> &'static Mutex<Option<Arc<Vec<usize>>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Vec<usize>>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs (or clears, with `None` or an empty sequence) a forced
/// busy-worker sequence: successive [`busy_workers`] reads rotate
/// through it instead of reading the live gauge. Test-only hook — it
/// exists so equivalence suites can drive the adaptive scheduler
/// through adversarial occupancy histories; it never changes what the
/// pool *does*, only what schedulers observe.
pub fn set_occupancy_override(sequence: Option<Vec<usize>>) {
    let mut slot = occ_slot().lock().unwrap();
    OCC_CURSOR.store(0, Ordering::SeqCst);
    match sequence {
        Some(seq) if !seq.is_empty() => {
            *slot = Some(Arc::new(seq));
            OCC_ACTIVE.store(true, Ordering::SeqCst);
        }
        _ => {
            *slot = None;
            OCC_ACTIVE.store(false, Ordering::SeqCst);
        }
    }
}

/// RAII occupancy override: installs `sequence` on construction and
/// restores the previously installed override (if any) on drop, so a
/// panicking test cannot leak a forced occupancy into its neighbours.
pub struct OccupancyOverride {
    prev: Option<Arc<Vec<usize>>>,
}

impl OccupancyOverride {
    /// Forces [`busy_workers`] through `sequence` until the guard drops.
    pub fn new(sequence: Vec<usize>) -> OccupancyOverride {
        let prev = occ_slot().lock().unwrap().clone();
        set_occupancy_override(Some(sequence));
        OccupancyOverride { prev }
    }
}

impl Drop for OccupancyOverride {
    fn drop(&mut self) {
        set_occupancy_override(self.prev.take().map(|seq| (*seq).clone()));
    }
}

/// Installs an occupancy override from `SHAM_OCC_PERTURB` (a comma-
/// separated busy-count sequence) the first time occupancy is read, so
/// CI can perturb the adaptive scheduler without code changes.
fn occ_env_init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(raw) = std::env::var("SHAM_OCC_PERTURB") {
            let seq: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .collect();
            if !seq.is_empty() {
                set_occupancy_override(Some(seq));
            }
        }
    });
}

/// Number of workers currently inside a job body — the occupancy
/// reading adaptive schedulers partition against. Honours the
/// [`set_occupancy_override`] / `SHAM_OCC_PERTURB` forcing hook.
pub fn busy_workers() -> usize {
    occ_env_init();
    if OCC_ACTIVE.load(Ordering::Relaxed) {
        let seq = occ_slot().lock().unwrap().clone();
        if let Some(seq) = seq {
            let i = OCC_CURSOR.fetch_add(1, Ordering::Relaxed);
            return seq[i % seq.len()];
        }
    }
    TELEMETRY.busy_workers.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// The persistent worker pool.
//
// Workers are OS threads spawned lazily by the first multi-threaded
// parallel call and then parked on an mpsc channel. A parallel call
// submits `k - 1` copies of a type-erased *job* (the caller is the
// k-th participant); each copy, when a worker dequeues it, runs the
// call's chunk-claiming loop until the chunk counter is exhausted.
//
// Because the job borrows the caller's stack (the pipeline, the chunk
// counter, the output buffers), the borrow is erased to a raw trait-
// object pointer and guarded by a cancellation protocol instead of a
// thread scope:
//
// * a worker *enters* a job by incrementing `active` and only then
//   re-checking `cancelled` (skipping the body if set);
// * the caller, once its own loop is done, sets `cancelled` and waits
//   for `active` to drain before returning.
//
// Under `SeqCst` ordering this guarantees no worker can be inside the
// erased closure after the caller returns: a worker that read
// `cancelled == false` incremented `active` *before* the caller's
// store, so the caller's drain-wait observes it. Job copies still
// sitting in the channel after cancellation are discarded (a few Arc
// clones of dead state) by whichever worker eventually dequeues them —
// nobody waits on them, so a busy pool never stalls an already-finished
// call.
// ---------------------------------------------------------------------

/// Thread name of pool workers — also how `resize_pool` recognises it
/// is running *on* a worker and must not wait for the pool to shrink.
const WORKER_THREAD_NAME: &str = "sham-pool-worker";

/// One message on the pool channel.
enum Message {
    /// Join a parallel call's chunk loop (skipped when already done).
    Run(Arc<JobShared>),
    /// Retire: the receiving worker exits (pool shrink / drain).
    Exit,
}

/// Shared state of one in-flight parallel call, type-erased so it can
/// cross the pool channel while borrowing the caller's stack.
struct JobShared {
    /// The call's chunk-claiming loop, lifetime-erased. Only valid
    /// while the owning `run_on_pool` frame is alive; the cancellation
    /// protocol enforces exactly that.
    task: *const (dyn Fn() + Sync),
    /// Set by the caller when the job is complete and `task` is about
    /// to go out of scope.
    cancelled: AtomicBool,
    /// Number of workers currently inside `task`.
    active: AtomicUsize,
    /// Parking for the caller's drain-wait.
    lock: Mutex<()>,
    cvar: Condvar,
    /// First panic that escaped `task` on a worker, replayed on the
    /// caller (matching `std::thread::scope` semantics).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `task` points at a `Sync` closure; the raw pointer is only
// dereferenced while the caller guarantees the referent is alive (see
// the cancellation protocol above).
unsafe impl Send for JobShared {}
unsafe impl Sync for JobShared {}

impl JobShared {
    /// Runs one pool worker's share of the job: enter, re-check
    /// cancellation, run the chunk loop, leave, wake the caller.
    fn run_from_worker(&self) {
        self.active.fetch_add(1, Ordering::SeqCst);
        if !self.cancelled.load(Ordering::SeqCst) {
            TELEMETRY.busy_workers.fetch_add(1, Ordering::Relaxed);
            let entered = telemetry_clock();
            // SAFETY: `cancelled` was still clear after our `active`
            // increment, so the caller is parked in its drain-wait and
            // the borrowed pipeline is alive until we decrement.
            let body = || unsafe { (*self.task)() };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                telemetry_count(&TELEMETRY.jobs_panicked);
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            if let Some(t0) = entered {
                telemetry_add(&TELEMETRY.busy_nanos, t0.elapsed().as_nanos() as u64);
            }
            telemetry_count(&TELEMETRY.jobs_executed);
            TELEMETRY.busy_workers.fetch_sub(1, Ordering::Relaxed);
        } else {
            telemetry_count(&TELEMETRY.jobs_discarded);
        }
        self.active.fetch_sub(1, Ordering::SeqCst);
        let _guard = self.lock.lock().unwrap();
        self.cvar.notify_all();
    }
}

/// The process-wide pool: the submit side of the job channel plus the
/// bookkeeping `resize_pool` and `pool_size` need.
struct Pool {
    sender: Sender<Message>,
    receiver: Arc<Mutex<Receiver<Message>>>,
    /// Live workers (incremented at spawn, decremented at exit).
    alive: Arc<AtomicUsize>,
    /// Intended worker count (alive converges to it as Exit messages
    /// are consumed).
    target: usize,
}

fn pool() -> &'static Mutex<Pool> {
    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let (sender, receiver) = channel();
        Mutex::new(Pool {
            sender,
            receiver: Arc::new(Mutex::new(receiver)),
            alive: Arc::new(AtomicUsize::new(0)),
            target: 0,
        })
    })
}

/// Number of live pool workers right now (0 until the first
/// multi-threaded parallel call, and again after a drain).
pub fn pool_size() -> usize {
    pool().lock().unwrap().alive.load(Ordering::SeqCst)
}

/// Parks on the job channel, running jobs until an Exit message (or a
/// closed channel) retires this worker.
fn worker_loop(receiver: Arc<Mutex<Receiver<Message>>>, alive: Arc<AtomicUsize>) {
    loop {
        // Take the lock only to dequeue; jobs run unlocked so workers
        // claim chunks concurrently. Parked time covers the lock wait
        // plus the channel wait — everything that isn't job work.
        let parked = telemetry_clock();
        let message = {
            let guard = receiver.lock().unwrap();
            guard.recv()
        };
        if let Some(t0) = parked {
            telemetry_add(&TELEMETRY.parked_nanos, t0.elapsed().as_nanos() as u64);
        }
        match message {
            Ok(Message::Run(job)) => {
                telemetry_count(&TELEMETRY.jobs_dequeued);
                job.run_from_worker()
            }
            Ok(Message::Exit) | Err(_) => break,
        }
    }
    alive.fetch_sub(1, Ordering::SeqCst);
}

/// Shrinks the pool to at most `workers` threads, synchronously: sends
/// the surplus Exit messages and waits for the live count to drop.
/// Growing is not done here — parallel calls grow the pool lazily.
fn resize_pool(workers: usize) {
    {
        let mut pool = pool().lock().unwrap();
        if pool.target <= workers {
            return;
        }
        for _ in workers..pool.target {
            let _ = pool.sender.send(Message::Exit);
        }
        pool.target = workers;
    }
    // A pool worker must never block on the pool's own shrink: the
    // Exit message that would satisfy the wait may be the one *this*
    // thread has to consume once its current job ends. From a worker
    // the shrink stays queued (best-effort, drains as jobs finish);
    // only external threads wait for it synchronously.
    if std::thread::current().name() == Some(WORKER_THREAD_NAME) {
        return;
    }
    // Exit messages queue behind in-flight jobs, so retiring workers
    // finish (or skip) those first; a brief spin-yield is enough. The
    // bound is re-read from the pool each turn: if a concurrent
    // parallel call regrows the pool meanwhile, waiting for the *old*
    // bound would never terminate — the live count converges to the
    // current target, whatever it is by now.
    loop {
        let pool = pool().lock().unwrap();
        if pool.alive.load(Ordering::SeqCst) <= pool.target {
            break;
        }
        drop(pool);
        std::thread::yield_now();
    }
}

/// Runs `work` on the calling thread plus `helpers` pool workers,
/// growing the pool as needed, and does not return until no worker can
/// still be inside `work`. Worker panics are replayed here.
fn run_on_pool(helpers: usize, work: &(dyn Fn() + Sync)) {
    // Erase the borrow's lifetime so the job can cross the channel; the
    // cancellation drain below guarantees no dereference can happen
    // after this frame ends.
    let erased: *const (dyn Fn() + Sync + 'static) = unsafe {
        std::mem::transmute::<*const (dyn Fn() + Sync + '_), *const (dyn Fn() + Sync + 'static)>(
            work as *const (dyn Fn() + Sync),
        )
    };
    let job = Arc::new(JobShared {
        task: erased,
        cancelled: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        lock: Mutex::new(()),
        cvar: Condvar::new(),
        panic: Mutex::new(None),
    });
    {
        let mut pool = pool().lock().unwrap();
        while pool.target < helpers {
            let receiver = Arc::clone(&pool.receiver);
            let alive = Arc::clone(&pool.alive);
            alive.fetch_add(1, Ordering::SeqCst);
            let spawned = std::thread::Builder::new()
                .name(WORKER_THREAD_NAME.into())
                .spawn(move || worker_loop(receiver, alive));
            match spawned {
                Ok(_) => pool.target += 1,
                Err(_) => {
                    // Spawn failure (resource limits): undo the count
                    // and run with however many workers exist.
                    pool.alive.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
        for _ in 0..helpers.min(pool.target) {
            telemetry_count(&TELEMETRY.jobs_submitted);
            let _ = pool.sender.send(Message::Run(Arc::clone(&job)));
        }
    }

    // The caller participates; the drop guard cancels and drains even
    // if `work` panics on this thread, so the borrow never escapes.
    struct Drain<'a>(&'a JobShared);
    impl Drop for Drain<'_> {
        fn drop(&mut self) {
            self.0.cancelled.store(true, Ordering::SeqCst);
            let mut guard = self.0.lock.lock().unwrap();
            while self.0.active.load(Ordering::SeqCst) != 0 {
                guard = self.0.cvar.wait(guard).unwrap();
            }
        }
    }
    {
        let _drain = Drain(&job);
        work();
    }
    let worker_panic = job.panic.lock().unwrap().take();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Splits `[0, n)` into chunks and runs `pipeline` over them on the
/// persistent worker pool, returning the per-chunk outputs concatenated
/// in order.
fn execute<P: ParallelIterator + Sync>(pipeline: P) -> Vec<P::Item> {
    let n = pipeline.base_len();
    let threads = current_num_threads().max(1);
    let min_len = pipeline.min_len().max(1);
    // ~4 chunks per worker so a slow chunk doesn't serialise the rest.
    let chunk = min_len.max(n.div_ceil(threads.saturating_mul(4).max(1)));
    let chunk_count = n.div_ceil(chunk.max(1));
    let workers = threads.min(chunk_count);

    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        pipeline.run_chunk(0, n, &mut |x| out.push(x));
        return out;
    }

    let next = AtomicUsize::new(0);
    let filled: Mutex<Vec<(usize, Vec<P::Item>)>> =
        Mutex::new(Vec::with_capacity(chunk_count));
    let pipeline = &pipeline;
    run_on_pool(workers - 1, &|| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= chunk_count {
            break;
        }
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let mut buf = Vec::new();
        pipeline.run_chunk(lo, hi, &mut |x| buf.push(x));
        filled.lock().unwrap().push((c, buf));
    });
    let mut chunks = filled.into_inner().unwrap();
    chunks.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(chunks.iter().map(|(_, v)| v.len()).sum());
    for (_, mut v) in chunks {
        out.append(&mut v);
    }
    out
}

/// A chunk-drivable parallel pipeline stage.
///
/// `run_chunk(lo, hi, each)` feeds every item the pipeline produces for
/// base indices `[lo, hi)` into `each`, in base order. Adapters compose
/// by wrapping the callback, so no stage materialises intermediate
/// buffers — only the final per-chunk output `Vec` allocates.
pub trait ParallelIterator: Sized {
    /// The produced item type. `Send` because chunk outputs cross back
    /// from worker threads.
    type Item: Send;

    /// Length of the underlying indexed base.
    fn base_len(&self) -> usize;

    /// Minimum chunk granularity (see
    /// [`IndexedParallelIterator::with_min_len`]).
    fn min_len(&self) -> usize {
        1
    }

    /// Produces this stage's items for base indices `[lo, hi)`.
    fn run_chunk<E: FnMut(Self::Item)>(&self, lo: usize, hi: usize, each: &mut E);

    /// Parallel `map`.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    /// Parallel `filter`.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, f }
    }

    /// Parallel `filter_map`.
    fn filter_map<O, F>(self, f: F) -> FilterMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> Option<O> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Rayon's "serial inner iterator" flat map: `f` returns an ordinary
    /// sequential iterator consumed inside the worker.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Parallel `copied` (for `&T` items).
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: Copy + Send + Sync + 'a,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    /// Runs the pipeline on the worker pool and collects the result.
    /// Output order is identical to a sequential run at any thread count.
    fn collect<C: FromIterator<Self::Item>>(self) -> C
    where
        Self: Sync,
    {
        execute(self).into_iter().collect()
    }
}

/// Pipelines whose items correspond 1:1, in order, with base indices —
/// the ones where positional adapters are meaningful.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pairs every item with its base index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Sets the minimum number of base items per chunk — raise it when
    /// per-item work is tiny so chunk bookkeeping doesn't dominate.
    fn with_min_len(self, min: usize) -> WithMinLen<Self> {
        WithMinLen { base: self, min }
    }
}

/// Owned-base pipeline: the result of `into_par_iter()`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn base_len(&self) -> usize {
        self.items.len()
    }

    fn run_chunk<E: FnMut(T)>(&self, lo: usize, hi: usize, each: &mut E) {
        for x in &self.items[lo..hi] {
            each(x.clone());
        }
    }
}

impl<T: Clone + Send + Sync> IndexedParallelIterator for IntoParIter<T> {}

/// Borrowed-slice pipeline: the result of `par_iter()`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn base_len(&self) -> usize {
        self.slice.len()
    }

    fn run_chunk<E: FnMut(&'a T)>(&self, lo: usize, hi: usize, each: &mut E) {
        for x in &self.slice[lo..hi] {
            each(x);
        }
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {}

/// Borrowed-subslice pipeline: the result of `par_chunks()`. The base
/// index space is the *chunk* index, so each item is a `&[T]` window of
/// up to `size` elements carved straight out of the source slice — no
/// per-call `Vec<&[T]>` materialisation.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn base_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn run_chunk<E: FnMut(&'a [T])>(&self, lo: usize, hi: usize, each: &mut E) {
        for c in lo..hi {
            let start = c * self.size;
            let end = (start + self.size).min(self.slice.len());
            each(&self.slice[start..end]);
        }
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {}

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, O, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    O: Send,
    F: Fn(P::Item) -> O + Sync,
{
    type Item = O;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn run_chunk<E: FnMut(O)>(&self, lo: usize, hi: usize, each: &mut E) {
        self.base.run_chunk(lo, hi, &mut |x| each((self.f)(x)));
    }
}

impl<P, O, F> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    O: Send,
    F: Fn(P::Item) -> O + Sync,
{
}

/// See [`ParallelIterator::filter`].
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn run_chunk<E: FnMut(P::Item)>(&self, lo: usize, hi: usize, each: &mut E) {
        self.base.run_chunk(lo, hi, &mut |x| {
            if (self.f)(&x) {
                each(x);
            }
        });
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, O, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    O: Send,
    F: Fn(P::Item) -> Option<O> + Sync,
{
    type Item = O;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn run_chunk<E: FnMut(O)>(&self, lo: usize, hi: usize, each: &mut E) {
        self.base.run_chunk(lo, hi, &mut |x| {
            if let Some(y) = (self.f)(x) {
                each(y);
            }
        });
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn run_chunk<E: FnMut(U::Item)>(&self, lo: usize, hi: usize, each: &mut E) {
        self.base.run_chunk(lo, hi, &mut |x| {
            for y in (self.f)(x) {
                each(y);
            }
        });
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: Copy + Send + Sync + 'a,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn run_chunk<E: FnMut(T)>(&self, lo: usize, hi: usize, each: &mut E) {
        self.base.run_chunk(lo, hi, &mut |x| each(*x));
    }
}

impl<'a, T, P> IndexedParallelIterator for Copied<P>
where
    T: Copy + Send + Sync + 'a,
    P: IndexedParallelIterator<Item = &'a T>,
{
}

/// See [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P: IndexedParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn run_chunk<E: FnMut((usize, P::Item))>(&self, lo: usize, hi: usize, each: &mut E) {
        // The indexed contract guarantees exactly one item per base
        // index, in order, so the running counter is the base index.
        let mut idx = lo;
        self.base.run_chunk(lo, hi, &mut |x| {
            each((idx, x));
            idx += 1;
        });
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for Enumerate<P> {}

/// See [`IndexedParallelIterator::with_min_len`].
pub struct WithMinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for WithMinLen<P> {
    type Item = P::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn min_len(&self) -> usize {
        self.min.max(self.base.min_len())
    }

    fn run_chunk<E: FnMut(P::Item)>(&self, lo: usize, hi: usize, each: &mut E) {
        self.base.run_chunk(lo, hi, each);
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for WithMinLen<P> {}

pub mod prelude {
    //! Everything a call site needs with one `use`.
    pub use super::{IndexedParallelIterator, ParallelIterator};

    /// `into_par_iter()` for owned collections and ranges. The source is
    /// materialised into a `Vec` base once, then chunked across workers.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Clone + Send + Sync,
    {
        /// Returns the parallel pipeline over this collection.
        fn into_par_iter(self) -> super::IntoParIter<Self::Item> {
            super::IntoParIter { items: self.into_iter().collect() }
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Clone + Send + Sync {}

    /// `par_iter()` / `par_chunks()` for slices (and anything that
    /// derefs to one).
    pub trait ParallelSlice<T: Sync> {
        /// Returns the parallel pipeline borrowing this slice.
        fn par_iter(&self) -> super::ParIter<'_, T>;

        /// Returns the parallel pipeline over `size`-element windows of
        /// this slice (the last window may be shorter). Each base index
        /// is one window, so callers shard without materialising a
        /// `Vec<&[T]>` of subslices.
        ///
        /// # Panics
        /// Panics if `size` is zero.
        fn par_chunks(&self, size: usize) -> super::ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> super::ParIter<'_, T> {
            super::ParIter { slice: self }
        }

        fn par_chunks(&self, size: usize) -> super::ParChunks<'_, T> {
            assert!(size > 0, "par_chunks size must be non-zero");
            super::ParChunks { slice: self, size }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};

    /// Serialises tests that touch the global thread override (poison-
    /// tolerant: a failed neighbour must not cascade).
    fn override_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn par_iter_matches_iter() {
        // Guarded: even tiny collects may touch the shared pool when a
        // concurrent test has forced a multi-thread override.
        let _guard = override_guard();
        let v = [1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let flat: Vec<usize> =
            (0..3usize).into_par_iter().flat_map_iter(|i| 0..i).collect();
        assert_eq!(flat, vec![0, 0, 1]);
    }

    #[test]
    fn executes_on_multiple_os_threads() {
        let _guard = override_guard();
        let _forced = super::ThreadOverride::new(4);
        // Per-item work is deliberately heavy so the chunk queue is still
        // draining while the later workers spawn — otherwise the first
        // worker can finish everything alone and the test would be
        // vacuous even on multi-core hardware.
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                let mut acc = i as u64;
                for k in 0..400_000u64 {
                    acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(k));
                }
                std::hint::black_box(acc);
                std::thread::current().id()
            })
            .collect();
        let distinct: HashSet<_> = ids.iter().collect();
        assert!(
            distinct.len() >= 2,
            "expected ≥ 2 worker threads, saw {}",
            distinct.len()
        );
    }

    #[test]
    fn single_thread_mode_runs_inline() {
        let _guard = override_guard();
        let _forced = super::ThreadOverride::new(1);
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = (0..1_000usize)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _guard = override_guard();
        let run = || -> (Vec<u64>, Vec<usize>, HashSet<u64>) {
            let mapped: Vec<u64> = (0..10_000u64)
                .into_par_iter()
                .filter(|&x| x % 3 != 0)
                .map(|x| x.wrapping_mul(0x9E37_79B9))
                .collect();
            let flat: Vec<usize> = (0..200usize)
                .into_par_iter()
                .flat_map_iter(|i| (0..i % 7).map(move |j| i * 10 + j))
                .collect();
            let set: HashSet<u64> =
                (0..5_000u64).into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x)).collect();
            (mapped, flat, set)
        };
        let sequential = {
            let _one = super::ThreadOverride::new(1);
            run()
        };
        for threads in [2, 3, 8] {
            let _forced = super::ThreadOverride::new(threads);
            assert_eq!(run(), sequential, "divergence at {threads} threads");
        }
    }

    #[test]
    fn enumerate_gives_base_indices() {
        let _guard = override_guard();
        let _forced = super::ThreadOverride::new(4);
        let v: Vec<u32> = (0..1_000).collect();
        let pairs: Vec<(usize, u32)> =
            v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        for (i, (idx, x)) in pairs.iter().enumerate() {
            assert_eq!(i, *idx);
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn with_min_len_bounds_chunk_granularity() {
        let _guard = override_guard();
        let _forced = super::ThreadOverride::new(8);
        // min_len larger than the input: everything lands in one chunk,
        // which must still produce the complete, ordered result.
        let out: Vec<usize> =
            (0..100usize).into_par_iter().with_min_len(1_000).map(|x| x + 1).collect();
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _guard = override_guard();
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = [7u32].par_iter().copied().collect();
        assert_eq!(one, vec![7]);
    }

    /// One multi-thread pass with enough per-item work that pool
    /// helpers must claim chunks; returns the distinct worker (non-
    /// caller) thread ids that participated.
    fn heavy_pass() -> HashSet<std::thread::ThreadId> {
        let caller = std::thread::current().id();
        (0..64usize)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                let mut acc = i as u64;
                for k in 0..200_000u64 {
                    acc = std::hint::black_box(
                        acc.wrapping_mul(6364136223846793005).wrapping_add(k),
                    );
                }
                std::hint::black_box(acc);
                std::thread::current().id()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .filter(|&id| id != caller)
            .collect()
    }

    #[test]
    fn pool_persists_across_calls() {
        let _guard = override_guard();
        let _forced = super::ThreadOverride::new(4);
        let first = heavy_pass();
        let size_after_first = super::pool_size();
        assert!(size_after_first >= 1, "pool never started");
        let second = heavy_pass();
        // No per-call spawn: the pool did not grow, and the same worker
        // threads (stable ids) served both calls.
        assert_eq!(super::pool_size(), size_after_first);
        assert!(!first.is_empty() && !second.is_empty());
        assert!(
            first.intersection(&second).next().is_some(),
            "second call did not reuse any pool worker"
        );
    }

    #[test]
    fn override_resizes_and_drains_the_pool() {
        let _guard = override_guard();
        {
            let _forced = super::ThreadOverride::new(4);
            heavy_pass();
            assert_eq!(super::pool_size(), 3, "4 threads = caller + 3 workers");
            {
                // Shrinking the override retires surplus workers
                // synchronously…
                let _shrunk = super::ThreadOverride::new(2);
                assert_eq!(super::pool_size(), 1);
                // …and a 2-thread call still works (and must not
                // regrow past its own needs).
                heavy_pass();
                assert_eq!(super::pool_size(), 1);
            }
            // Dropping the inner guard restores 4 threads lazily: the
            // pool grows again on the next call, not eagerly.
            assert_eq!(super::pool_size(), 1);
            heavy_pass();
            assert_eq!(super::pool_size(), 3);
        }
        // Forcing the inline path drains the pool entirely.
        let _one = super::ThreadOverride::new(1);
        assert_eq!(super::pool_size(), 0);
    }

    #[test]
    fn shrink_requested_from_inside_a_job_does_not_deadlock() {
        let _guard = override_guard();
        let _forced = super::ThreadOverride::new(4);
        // A closure running (possibly on a pool worker) that flips the
        // override down must not wait for the pool's own shrink — that
        // Exit might be addressed to the very thread running it.
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                let mut acc = i as u64;
                for k in 0..50_000u64 {
                    acc = std::hint::black_box(acc.wrapping_add(k));
                }
                std::hint::black_box(acc);
                if i == 20 {
                    let _nested = super::ThreadOverride::new(1);
                }
                i
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_matches_chunks() {
        let _guard = override_guard();
        let v: Vec<u32> = (0..1_003).collect();
        for size in [1, 7, 64, 1_000, 5_000] {
            let expected: Vec<Vec<u32>> =
                v.chunks(size).map(|c| c.to_vec()).collect();
            for threads in [1, 4] {
                let _forced = super::ThreadOverride::new(threads);
                let got: Vec<Vec<u32>> =
                    v.par_chunks(size).map(|c| c.to_vec()).collect();
                assert_eq!(got, expected, "size {size} at {threads} threads");
            }
        }
        let empty: Vec<Vec<u32>> =
            Vec::<u32>::new().par_chunks(8).map(|c| c.to_vec()).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn pool_stats_invariants_across_drain_resize_and_panic() {
        let _guard = override_guard();
        // Serialise against a quiescent pool so counter deltas below are
        // attributable to this test alone.
        let base = {
            let _one = super::ThreadOverride::new(1);
            super::pool_stats()
        };
        assert_eq!(base.queue_depth, 0, "drained pool must have no queue");

        // A multi-thread burst, a shrink/regrow cycle, and a panicking
        // job — then drain and check the accounting identities.
        let _forced = super::ThreadOverride::new(4);
        heavy_pass();
        {
            let _shrunk = super::ThreadOverride::new(2);
            heavy_pass();
        }
        heavy_pass();
        // The chunk holding the poisoned item may be claimed by the
        // calling thread itself, whose panic replays without touching
        // the pool's panic counter — retry (bounded) until a pool
        // worker is the one that catches it.
        let mut tries = 0;
        loop {
            tries += 1;
            let panicked = std::panic::catch_unwind(|| {
                let _: Vec<u64> = (0..64usize)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|i| {
                        let mut acc = i as u64;
                        for k in 0..100_000u64 {
                            acc = std::hint::black_box(acc.wrapping_add(k));
                        }
                        if i == 33 {
                            panic!("poisoned item");
                        }
                        acc
                    })
                    .collect();
            });
            assert!(panicked.is_err());
            if super::pool_stats().jobs_panicked > base.jobs_panicked {
                break;
            }
            assert!(tries < 64, "pool workers never caught the poisoned item");
        }

        let stats = {
            // Forcing 1 thread drains the pool: every queued Run message
            // is consumed (executed or discarded) before the Exits that
            // retire the workers, so the identities are exact.
            let _one = super::ThreadOverride::new(1);
            super::pool_stats()
        };
        assert!(stats.jobs_submitted > base.jobs_submitted, "burst submitted jobs");
        assert_eq!(
            stats.jobs_submitted, stats.jobs_dequeued,
            "drained pool consumed every submitted job"
        );
        assert_eq!(
            stats.jobs_dequeued,
            stats.jobs_executed + stats.jobs_discarded,
            "every dequeued job either ran or was discarded"
        );
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.busy_workers, 0, "no body can outlive its call");
        assert_eq!(stats.workers, 0, "pool drained");
        assert!(
            stats.jobs_panicked > base.jobs_panicked,
            "the poisoned job was counted"
        );
        assert!(
            stats.busy_nanos > base.busy_nanos,
            "job bodies accrued busy time"
        );
        assert!(
            stats.parked_nanos >= base.parked_nanos,
            "parked time is monotone"
        );
        assert!(stats.occupancy() == 0.0, "drained pool is idle");
    }

    #[test]
    fn occupancy_override_rotates_and_restores() {
        let _guard = override_guard();
        {
            let _forced = super::OccupancyOverride::new(vec![3, 1, 4]);
            assert_eq!(super::busy_workers(), 3);
            assert_eq!(super::busy_workers(), 1);
            assert_eq!(super::busy_workers(), 4);
            assert_eq!(super::busy_workers(), 3, "sequence wraps around");
            {
                let _nested = super::OccupancyOverride::new(vec![7]);
                assert_eq!(super::busy_workers(), 7);
                assert_eq!(super::busy_workers(), 7);
            }
            // The outer override is restored (cursor reset to 0).
            assert_eq!(super::busy_workers(), 3);
        }
        // No override: the live gauge, which is 0 on a quiescent pool.
        let _one = super::ThreadOverride::new(1);
        assert_eq!(super::busy_workers(), 0);
    }

    #[test]
    fn worker_panic_is_replayed_on_the_caller() {
        let _guard = override_guard();
        let _forced = super::ThreadOverride::new(4);
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u64> = (0..64usize)
                .into_par_iter()
                .with_min_len(1)
                .map(|i| {
                    // Slow every item down so pool workers share the
                    // chunks, whichever thread hits the poisoned one.
                    let mut acc = i as u64;
                    for k in 0..100_000u64 {
                        acc = std::hint::black_box(acc.wrapping_add(k));
                    }
                    if i == 33 {
                        panic!("poisoned item");
                    }
                    acc
                })
                .collect();
        });
        assert!(result.is_err(), "panic must propagate out of collect");
        // The pool survives a panicking job.
        let after = heavy_pass();
        assert!(!after.is_empty());
    }
}
