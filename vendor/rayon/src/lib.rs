//! Vendored stand-in for `rayon` (no crates.io access in the build
//! environment). `par_iter`/`into_par_iter` return ordinary sequential
//! std iterators, and rayon-specific adapters the workspace uses
//! (`flat_map_iter`) are provided as no-op aliases of their std
//! equivalents.
//!
//! Results are bit-identical to a real rayon run — the workspace only
//! uses order-insensitive collects (followed by sorts) — just not
//! parallel. The single-threaded container image makes that the right
//! trade; swapping the real rayon back in later requires only a
//! manifest change, since the API subset is call-compatible.

pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges; sequential.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// `par_iter()` for slices (and anything that derefs to one);
    /// sequential.
    pub trait ParallelSlice<T> {
        /// Returns the (sequential) iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// Rayon's extra adapters, aliased onto std. `flat_map_iter` is
    /// rayon's "serial inner iterator" variant of `flat_map`, which is
    /// exactly what `flat_map` already is on a std iterator.
    pub trait ParallelIterator: Iterator + Sized {
        /// Sequential `flat_map`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }

    impl<I: Iterator> ParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let flat: Vec<usize> = (0..3usize).into_par_iter().flat_map_iter(|i| 0..i).collect();
        assert_eq!(flat, vec![0, 0, 1]);
    }
}
