//! Vendored stand-in for `serde_json`: renders the vendored `serde`
//! crate's [`Value`] tree to JSON text and parses it back.
//!
//! The emitted JSON is standard (RFC 8259): objects for maps, arrays for
//! sequences, `\u` escapes for control characters. Because the vendored
//! serde model serializes non-string-keyed maps as arrays of
//! `[key, value]` pairs, every workspace type encodes without error.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes `value` as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    T::deserialize(&value)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no Infinity/NaN; null matches serde_json's lossy modes.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last hex digit
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1; // parse_hex4 advances from current digit
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                Error(format!("bad \\u escape at byte {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {other:?} at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    /// Parses the 4 hex digits after `\u`; leaves `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        let hex = self
            .bytes
            .get(start..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?;
        let cp = u32::from_str_radix(s, 16).map_err(|e| Error(e.to_string()))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        let s: String = from_str(&to_string("gօօgle \"q\" \n").unwrap()).unwrap();
        assert_eq!(s, "gօօgle \"q\" \n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 'а'), (2, 'б')];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, char)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn astral_escapes_parse() {
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "😀");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
