//! Vendored stand-in for `serde`, used because the build environment has
//! no access to crates.io.
//!
//! Instead of real serde's visitor-based zero-copy architecture, this
//! crate uses a tiny owned data model: [`Serialize`] lowers a value into
//! a [`Value`] tree and [`Deserialize`] rebuilds it. The `serde_json`
//! vendored crate renders [`Value`] to/from JSON text. The API surface
//! matches what the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` (including `#[serde(skip)]`), `serde_json::to_string`,
//! and `serde_json::from_str`. Maps with non-string keys are serialized
//! as sequences of `[key, value]` pairs, which keeps the JSON encoder
//! total; the format round-trips with itself, which is all the test
//! suite requires.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::{Ipv4Addr, Ipv6Addr};

/// The serialized form of any value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string (also used for `char` and unit enum variants).
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion-ordered, keys are field or variant names.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// An "expected X" error.
    pub fn expected(what: &str) -> Error {
        Error(format!("expected {what}"))
    }

    /// Adds the enclosing type name to the error path.
    pub fn within(self, ty: &str) -> Error {
        Error(format!("{ty}: {}", self.0))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Field access helper handed to derived `Deserialize` impls.
pub struct StructMap<'a>(&'a [(String, Value)]);

impl<'a> StructMap<'a> {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Result<&'a Value, Error> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error(format!("missing field `{name}`")))
    }
}

impl Value {
    /// Interprets the value as a struct body (a map keyed by field name).
    pub fn as_struct_map(&self) -> Result<StructMap<'_>, Error> {
        match self {
            Value::Map(m) => Ok(StructMap(m)),
            other => Err(Error(format!("expected map, got {other:?}"))),
        }
    }

    /// Interprets the value as a sequence, optionally of an exact length.
    pub fn as_seq_of(&self, len: Option<usize>) -> Result<&[Value], Error> {
        match self {
            Value::Seq(s) => {
                if let Some(n) = len {
                    if s.len() != n {
                        return Err(Error(format!("expected {n}-element seq, got {}", s.len())));
                    }
                }
                Ok(s)
            }
            other => Err(Error(format!("expected seq, got {other:?}"))),
        }
    }

    /// Interprets the value as an externally tagged enum payload:
    /// a single-entry map `{"Variant": payload}`.
    pub fn as_enum_tag(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Map(m) if m.len() == 1 => Ok((m[0].0.as_str(), &m[0].1)),
            other => Err(Error(format!("expected single-entry map, got {other:?}"))),
        }
    }
}

/// Lowers `self` into a [`Value`].
pub trait Serialize {
    /// Produces the serialized form.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the serialized form.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// --- primitives ------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error(format!("expected unsigned int, got {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for i64")))?,
                    other => return Err(Error(format!("expected int, got {other:?}"))),
                };
                <$t>::try_from(raw).map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

// `Value` round-trips through itself, so callers can (de)serialize
// dynamically-shaped documents (e.g. merge-on-write JSON snapshots).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq_of(None)?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = value
            .as_seq_of(Some(N))?
            .iter()
            .map(T::deserialize)
            .collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error(format!("expected {N}-element array")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                let s = value.as_seq_of(Some(N))?;
                Ok(($($t::deserialize(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

fn serialize_pairs<'a, K: Serialize + 'a, V: Serialize + 'a>(
    pairs: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        pairs
            .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
            .collect(),
    )
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    value
        .as_seq_of(None)?
        .iter()
        .map(|entry| {
            let kv = entry.as_seq_of(Some(2))?;
            Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq_of(None)?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq_of(None)?.iter().map(T::deserialize).collect()
    }
}

// --- common std types ------------------------------------------------------

impl Serialize for Ipv4Addr {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        String::deserialize(value)?
            .parse()
            .map_err(|e| Error(format!("bad IPv4 address: {e}")))
    }
}

impl Serialize for Ipv6Addr {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv6Addr {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        String::deserialize(value)?
            .parse()
            .map_err(|e| Error(format!("bad IPv6 address: {e}")))
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            Value::U64(self.as_secs()),
            Value::U64(u64::from(self.subsec_nanos())),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value.as_seq_of(Some(2))?;
        Ok(std::time::Duration::new(
            u64::deserialize(&s[0])?,
            u32::deserialize(&s[1])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u32, 1, u32::MAX] {
            assert_eq!(u32::deserialize(&v.serialize()).unwrap(), v);
        }
        assert_eq!(i32::deserialize(&(-5i32).serialize()).unwrap(), -5);
        assert_eq!(char::deserialize(&'Δ'.serialize()).unwrap(), 'Δ');
        assert_eq!(
            Option::<String>::deserialize(&None::<String>.serialize()).unwrap(),
            None
        );
    }

    #[test]
    fn containers_round_trip() {
        let m: BTreeMap<u32, Vec<u32>> = [(1, vec![2, 3]), (4, vec![])].into_iter().collect();
        assert_eq!(BTreeMap::<u32, Vec<u32>>::deserialize(&m.serialize()).unwrap(), m);
        let arr = [7u32; 5];
        assert_eq!(<[u32; 5]>::deserialize(&arr.serialize()).unwrap(), arr);
        let t = (1u32, 2u32, 3u8);
        assert_eq!(<(u32, u32, u8)>::deserialize(&t.serialize()).unwrap(), t);
    }
}
