//! Vendored stand-in for the `rand` crate (the build environment has no
//! crates.io access). Implements exactly the API surface the workspace
//! uses — `StdRng::seed_from_u64`, `Rng::gen_range` over integer and
//! float ranges, and `Rng::gen_bool` — on top of xoshiro256++ seeded via
//! splitmix64, the same construction the real `rand_xoshiro` uses.
//!
//! Streams are deterministic per seed (the workspace's workload and
//! perception simulators rely on that) but are *not* bit-compatible with
//! upstream `rand`'s StdRng; nothing in the workspace depends on the
//! upstream stream.

use std::ops::{Range, RangeInclusive};

/// Source of raw random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding from a `u64`, the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range (or other distribution description) that can be sampled.
pub trait SampleRange<T> {
    /// Draws one value. Panics if the range is empty, matching `rand`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of the widest type.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(draw)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64).filter(|_| {
            StdRng::seed_from_u64(42).gen_range(0u32..1000) == c.gen_range(0u32..1000)
        });
        assert!(same.count() < 64);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=5);
            assert!((1..=5).contains(&w));
            let x = rng.gen_range(-0.4f64..0.4);
            assert!((-0.4..0.4).contains(&x));
            let s = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
