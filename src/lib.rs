//! # shamfinder
//!
//! A comprehensive Rust reproduction of **“ShamFinder: An Automated
//! Framework for Detecting IDN Homographs”** (Suzuki, Chiba, Yoneya,
//! Mori, Goto — ACM IMC 2019).
//!
//! ShamFinder detects internationalized-domain-name (IDN) homographs —
//! registrations like `gօօgle.com` or `facébook.com` that are visually
//! indistinguishable from a victim domain — by combining two homoglyph
//! databases:
//!
//! * **SimChar** ([`simchar`]): built *automatically* by rendering every
//!   IDNA-permitted character as a 32×32 bitmap and pairing glyphs whose
//!   pixel difference Δ is at most θ = 4;
//! * **UC** ([`confusables`]): the Unicode consortium's hand-maintained
//!   confusables list.
//!
//! This umbrella crate re-exports the whole workspace so downstream users
//! can depend on a single crate:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`unicode`] | blocks, scripts, categories, IDNA2008 derived property |
//! | [`punycode`] | RFC 3492 Bootstring, ACE labels, [`prelude::DomainName`] |
//! | [`glyph`] | the SynthUnifont bitmap font and image metrics |
//! | [`confusables`] | TR39 confusables format + embedded data |
//! | [`simchar`] | the SimChar builder and the combined [`prelude::HomoglyphDb`] |
//! | [`core`] | Algorithm 1 detection, highlighting, reverting, policies |
//! | [`dns`] | zone files, resolver, port scanning, passive DNS |
//! | [`web`] | HTTP client/server, site classification, blacklists |
//! | [`langid`] | language identification for IDN labels |
//! | [`perception`] | the human-study simulator |
//! | [`workload`] | deterministic synthetic world generation |
//! | [`measure`] | per-table/figure experiment reproduction |
//!
//! # Quickstart
//!
//! ```
//! use shamfinder::prelude::*;
//!
//! // Build a homoglyph database over a couple of blocks (the full
//! // repertoire takes ~1 s in release mode; see examples/quickstart.rs).
//! let font = SynthUnifont::v12();
//! let simchar = build(&font, &BuildConfig {
//!     repertoire: Repertoire::Blocks(vec!["Basic Latin", "Cyrillic", "Armenian"]),
//!     ..BuildConfig::default()
//! }).db;
//!
//! let framework = Framework::new(
//!     simchar,
//!     UcDatabase::embedded(),
//!     vec!["google".to_string()],
//!     "com",
//! );
//!
//! let corpus = vec![DomainName::parse("gօօgle.com").unwrap()]; // Armenian օ
//! let report = framework.run(&corpus);
//! assert_eq!(&*report.detections[0].reference, "google");
//! ```

pub mod metrics;

pub use sham_confusables as confusables;
pub use sham_core as core;
pub use sham_dns as dns;
pub use sham_glyph as glyph;
pub use sham_langid as langid;
pub use sham_measure as measure;
pub use sham_perception as perception;
pub use sham_punycode as punycode;
pub use sham_simchar as simchar;
pub use sham_unicode as unicode;
pub use sham_web as web;
pub use sham_workload as workload;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use sham_confusables::UcDatabase;
    pub use sham_core::{
        revert_stem, Detection, Framework, Indexing, Policy, Reverted, Warning,
    };
    pub use sham_glyph::{Bitmap, GlyphSource, SynthUnifont};
    pub use sham_punycode::DomainName;
    pub use sham_simchar::{
        build, BuildConfig, DbSelection, HomoglyphDb, Repertoire, SimCharDb,
    };
    pub use sham_unicode::CodePoint;
}
