//! Machine-readable metrics documents — one schema, two producers.
//!
//! `shamfinder serve-feed --metrics-json` and `shamfinder scan-zone
//! --metrics-json` both write a JSON ledger here. The shared sections
//! (`per_tld`, `exec`, `pool`) are built by the same helpers, so a
//! dashboard consuming one consumes the other; the top section differs
//! by workload (`events` + `feeds` + `robustness` for the streaming
//! ingest service, `scan` for the batch scanner). The schema-pinning
//! test in this module is the contract: adding or renaming a field is
//! fine, silently dropping one is not.

use serde::Value;
use sham_core::scan::ScanReport;
use sham_core::{ExecStats, IngestReport, PoolStats};

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// The `exec` section: what the occupancy-adaptive scheduler chose.
fn exec_value(exec: &ExecStats) -> Value {
    map(vec![
        ("batches", Value::U64(exec.batches)),
        ("inline_batches", Value::U64(exec.inline_batches)),
        ("shards", Value::U64(exec.shards)),
        ("min_shard_len", Value::U64(exec.min_shard_len as u64)),
        ("max_shard_len", Value::U64(exec.max_shard_len as u64)),
        ("max_workers", Value::U64(exec.max_workers as u64)),
    ])
}

/// The `pool` section: worker-pool telemetry at report time.
fn pool_value(pool: &PoolStats) -> Value {
    map(vec![
        ("workers", Value::U64(pool.workers as u64)),
        ("busy_workers", Value::U64(pool.busy_workers as u64)),
        ("queue_depth", Value::U64(pool.queue_depth as u64)),
        ("jobs_submitted", Value::U64(pool.jobs_submitted)),
        ("jobs_dequeued", Value::U64(pool.jobs_dequeued)),
        ("jobs_executed", Value::U64(pool.jobs_executed)),
        ("jobs_discarded", Value::U64(pool.jobs_discarded)),
        ("jobs_panicked", Value::U64(pool.jobs_panicked)),
        ("busy_nanos", Value::U64(pool.busy_nanos)),
        ("parked_nanos", Value::U64(pool.parked_nanos)),
        ("occupancy", Value::F64(pool.occupancy())),
    ])
}

/// One TLD's core counters — identical keys in both documents.
fn tld_core(domains: u64, idns: u64, detections: u64) -> Vec<(&'static str, Value)> {
    vec![
        ("domains", Value::U64(domains)),
        ("idns", Value::U64(idns)),
        ("detections", Value::U64(detections)),
    ]
}

/// The `serve-feed` document: per-TLD counts, per-feed accounting, the
/// robustness counters and the scheduling/pool telemetry — everything
/// the console ledger prints, minus individual detections (counts only,
/// so the file stays small at zone scale).
pub fn ingest_metrics_json(
    report: &IngestReport,
    exec: &ExecStats,
    pool: &PoolStats,
) -> String {
    let per_tld = Value::Map(
        report
            .router
            .per_tld
            .iter()
            .map(|lane| {
                (
                    lane.tld.clone(),
                    map(tld_core(
                        lane.report.total_domains as u64,
                        lane.report.idn_count as u64,
                        lane.report.detections.len() as u64,
                    )),
                )
            })
            .collect(),
    );
    let feeds = Value::Seq(
        report
            .feeds
            .iter()
            .map(|feed| {
                map(vec![
                    ("name", Value::Str(feed.name.clone())),
                    ("registrations", Value::U64(feed.registrations)),
                    ("churns", Value::U64(feed.churns)),
                    ("quarantined", Value::U64(feed.quarantined)),
                    ("retries", Value::U64(feed.retries)),
                    ("outcome", Value::Str(format!("{:?}", feed.outcome))),
                ])
            })
            .collect(),
    );
    let doc = map(vec![
        (
            "events",
            map(vec![
                ("delivered", Value::U64(report.events_delivered())),
                ("accounted", Value::U64(report.events_accounted())),
                ("routed", Value::U64(report.router.total_domains() as u64)),
                ("unrouted", Value::U64(report.router.unrouted_domains as u64)),
                ("detections", Value::U64(report.router.detection_count() as u64)),
                ("reference_diffs", Value::U64(report.router.reference_diffs as u64)),
            ]),
        ),
        ("per_tld", per_tld),
        ("feeds", feeds),
        (
            "robustness",
            map(vec![
                ("shed", Value::U64(report.shed)),
                ("quarantined", Value::U64(report.quarantined)),
                ("lost", Value::U64(report.lost)),
                ("lane_panics", Value::U64(report.lane_panics)),
                ("lane_folds", Value::U64(report.lane_folds)),
            ]),
        ),
        ("exec", exec_value(exec)),
        ("pool", pool_value(pool)),
    ]);
    serde_json::to_string(&doc).unwrap_or_default()
}

/// The `scan-zone` document: run totals with throughput, per-TLD
/// accounting merged with each lane's detection counts, and the same
/// `exec`/`pool` sections `serve-feed` writes.
pub fn scan_metrics_json(report: &ScanReport, pool: &PoolStats) -> String {
    let totals = report.totals();
    let throughput = |records: u64, bytes: u64, secs: f64| {
        let (rps, mbps) = if secs > 0.0 {
            (records as f64 / secs, bytes as f64 / 1e6 / secs)
        } else {
            (0.0, 0.0)
        };
        (Value::F64(rps), Value::F64(mbps))
    };

    let per_tld = Value::Map(
        report
            .per_tld
            .iter()
            .map(|(tld, s)| {
                // The router lane for this TLD (may be absent when every
                // record was deduped, blacklisted, or quarantined).
                let lane = report.router.per_tld.iter().find(|l| &l.tld == tld);
                let (domains, idns, detections) = lane
                    .map(|l| {
                        (
                            l.report.total_domains as u64,
                            l.report.idn_count as u64,
                            l.report.detections.len() as u64,
                        )
                    })
                    .unwrap_or((0, 0, 0));
                let (rps, mbps) = throughput(s.records, s.bytes, s.elapsed_secs);
                let mut entries = tld_core(domains, idns, detections);
                entries.extend(vec![
                    ("bytes", Value::U64(s.bytes)),
                    ("lines", Value::U64(s.lines)),
                    ("records", Value::U64(s.records)),
                    ("routed", Value::U64(s.routed)),
                    ("dedup_consecutive", Value::U64(s.dedup_consecutive)),
                    ("dedup_window", Value::U64(s.dedup_window)),
                    ("blacklisted", Value::U64(s.blacklisted)),
                    ("quarantined", Value::U64(s.quarantined)),
                    ("elapsed_secs", Value::F64(s.elapsed_secs)),
                    ("records_per_sec", rps),
                    ("mb_per_sec", mbps),
                ]);
                (tld.clone(), map(entries))
            })
            .collect(),
    );

    let (rps, mbps) = throughput(totals.records, totals.bytes, totals.elapsed_secs);
    let doc = map(vec![
        (
            "scan",
            map(vec![
                ("files", Value::U64(report.files as u64)),
                ("bytes", Value::U64(totals.bytes)),
                ("lines", Value::U64(totals.lines)),
                ("records", Value::U64(totals.records)),
                ("parsed", Value::U64(totals.parsed())),
                ("routed", Value::U64(totals.routed)),
                ("dedup_consecutive", Value::U64(totals.dedup_consecutive)),
                ("dedup_window", Value::U64(totals.dedup_window)),
                ("blacklisted", Value::U64(totals.blacklisted)),
                ("quarantined", Value::U64(totals.quarantined)),
                ("detections", Value::U64(report.detection_count() as u64)),
                ("accounted", Value::Bool(report.verify_accounting().is_ok())),
                ("elapsed_secs", Value::F64(totals.elapsed_secs)),
                ("records_per_sec", rps),
                ("mb_per_sec", mbps),
            ]),
        ),
        ("per_tld", per_tld),
        ("exec", exec_value(&report.router.exec())),
        ("pool", pool_value(pool)),
    ]);
    serde_json::to_string(&doc).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sham_core::ingest::{FeedOutcome, FeedReport};
    use sham_core::router::RouterReport;
    use sham_core::scan::TldScanStats;
    use std::collections::BTreeMap;

    fn keys_of(value: &Value) -> Vec<&str> {
        match value {
            Value::Map(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
            other => panic!("expected an object, got {other:?}"),
        }
    }

    fn section<'a>(doc: &'a Value, name: &str) -> &'a Value {
        match doc {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing section {name:?}")),
            other => panic!("expected an object, got {other:?}"),
        }
    }

    const EXEC_KEYS: [&str; 6] = [
        "batches",
        "inline_batches",
        "shards",
        "min_shard_len",
        "max_shard_len",
        "max_workers",
    ];
    const POOL_KEYS: [&str; 11] = [
        "workers",
        "busy_workers",
        "queue_depth",
        "jobs_submitted",
        "jobs_dequeued",
        "jobs_executed",
        "jobs_discarded",
        "jobs_panicked",
        "busy_nanos",
        "parked_nanos",
        "occupancy",
    ];

    fn empty_ingest_report() -> IngestReport {
        IngestReport {
            router: RouterReport::default(),
            feeds: vec![FeedReport {
                name: "f".into(),
                registrations: 0,
                churns: 0,
                quarantined: 0,
                retries: 0,
                outcome: FeedOutcome::Completed,
                last_error: None,
            }],
            lanes: Vec::new(),
            quarantine: Vec::new(),
            quarantined: 0,
            shed: 0,
            lost: 0,
            lane_panics: 0,
            lane_folds: 0,
        }
    }

    fn empty_scan_report() -> ScanReport {
        let mut per_tld = BTreeMap::new();
        per_tld.insert("com".to_string(), TldScanStats::default());
        ScanReport {
            router: RouterReport::default(),
            per_tld,
            quarantine_samples: Vec::new(),
            files: 1,
        }
    }

    #[test]
    fn ingest_schema_is_pinned() {
        let json = ingest_metrics_json(
            &empty_ingest_report(),
            &ExecStats::default(),
            &PoolStats::default(),
        );
        let doc: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            keys_of(&doc),
            vec!["events", "per_tld", "feeds", "robustness", "exec", "pool"]
        );
        assert_eq!(
            keys_of(section(&doc, "events")),
            vec!["delivered", "accounted", "routed", "unrouted", "detections", "reference_diffs"]
        );
        assert_eq!(
            keys_of(section(&doc, "robustness")),
            vec!["shed", "quarantined", "lost", "lane_panics", "lane_folds"]
        );
        assert_eq!(keys_of(section(&doc, "exec")), EXEC_KEYS.to_vec());
        assert_eq!(keys_of(section(&doc, "pool")), POOL_KEYS.to_vec());
        match section(&doc, "feeds") {
            Value::Seq(feeds) => assert_eq!(
                keys_of(&feeds[0]),
                vec!["name", "registrations", "churns", "quarantined", "retries", "outcome"]
            ),
            other => panic!("feeds should be a sequence, got {other:?}"),
        }
    }

    #[test]
    fn scan_schema_is_pinned_and_shares_sections() {
        let json = scan_metrics_json(&empty_scan_report(), &PoolStats::default());
        let doc: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(keys_of(&doc), vec!["scan", "per_tld", "exec", "pool"]);
        assert_eq!(
            keys_of(section(&doc, "scan")),
            vec![
                "files",
                "bytes",
                "lines",
                "records",
                "parsed",
                "routed",
                "dedup_consecutive",
                "dedup_window",
                "blacklisted",
                "quarantined",
                "detections",
                "accounted",
                "elapsed_secs",
                "records_per_sec",
                "mb_per_sec",
            ]
        );
        // The shared sections carry the exact serve-feed key sets.
        assert_eq!(keys_of(section(&doc, "exec")), EXEC_KEYS.to_vec());
        assert_eq!(keys_of(section(&doc, "pool")), POOL_KEYS.to_vec());
        // A scan per-TLD entry embeds the serve-feed core triple first.
        let com = section(section(&doc, "per_tld"), "com");
        let keys = keys_of(com);
        assert_eq!(&keys[..3], &["domains", "idns", "detections"]);
        assert_eq!(
            &keys[3..],
            &[
                "bytes",
                "lines",
                "records",
                "routed",
                "dedup_consecutive",
                "dedup_window",
                "blacklisted",
                "quarantined",
                "elapsed_secs",
                "records_per_sec",
                "mb_per_sec",
            ]
        );
    }
}
