//! `shamfinder` — command-line front end to the detection framework.
//!
//! ```text
//! shamfinder build-db [--theta N] [--out FILE]     build SimChar, print stats
//! shamfinder index build <out> [--theta N] [--with-refs [FILE]]
//!                                                  snapshot the flat pair index,
//!                                                  optionally with the reference set
//! shamfinder index load <path> [--theta N]         mount + verify a snapshot
//! shamfinder index stat <path>                     inspect a snapshot's sections
//! shamfinder check <domain> [--refs a,b,c]         check one domain
//! shamfinder scan <zone-file> [--tld com] [--refs-file FILE]
//! shamfinder serve-feed [--tlds com,net,org] [--queue N] [--batch N]
//!                       [--policy block|shed] [--faults PERMILLE] [--seed S]
//!                       [--events N] [--zone FILE --tld com] [--refs-file FILE]
//!                       [--metrics-json FILE]
//! shamfinder scan-zone <FILE...> [--tld TLD] [--refs-file FILE]
//!                      [--blacklist FILE] [--batch N] [--window N]
//!                      [--chunk BYTES] [--metrics-json FILE]
//!                                                  batch-scan zone files (streaming,
//!                                                  overlapped I/O, per-TLD metrics)
//! shamfinder gen-zone <FILE> [--mb N | --records N] [--tld com] [--seed S]
//!                     [--malformed PERMILLE] [--homographs PERMILLE]
//!                                                  generate a synthetic zone file
//! shamfinder revert <idn>                          map an IDN back to LDH
//! shamfinder homoglyphs <char-or-hex>              list a character's twins
//! shamfinder surface <label> [--tld com|jp|de]     registrable homograph count
//! ```

use shamfinder::core::IdnTable;
use shamfinder::prelude::*;
use shamfinder::unicode::block_of;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  shamfinder build-db [--theta N] [--out FILE]\n  \
         shamfinder index build <out> [--theta N] [--with-refs [FILE]]\n  \
         shamfinder index load <path> [--theta N]\n  \
         shamfinder index stat <path>\n  \
         shamfinder check <domain> [--refs a,b,c]\n  \
         shamfinder scan <zone-file> [--tld com] [--refs-file FILE]\n  \
         shamfinder serve-feed [--tlds com,net,org] [--queue N] [--batch N] \
[--policy block|shed] [--faults PERMILLE] [--seed S] [--events N] \
[--zone FILE --tld com] [--refs-file FILE] [--metrics-json FILE]\n  \
         shamfinder scan-zone <FILE...> [--tld TLD] [--refs-file FILE] \
[--blacklist FILE] [--batch N] [--window N] [--chunk BYTES] [--metrics-json FILE]\n  \
         shamfinder gen-zone <FILE> [--mb N | --records N] [--tld com] [--seed S] \
[--malformed PERMILLE] [--homographs PERMILLE]\n  \
         shamfinder revert <idn-or-stem>\n  \
         shamfinder homoglyphs <char-or-hex>\n  \
         shamfinder surface <label> [--tld com|jp|de|kr]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn build_db(theta: u32) -> HomoglyphDb {
    eprintln!("[shamfinder] building SimChar (θ = {theta}) …");
    let font = SynthUnifont::v12();
    let result = build(&font, &BuildConfig { theta, ..BuildConfig::default() });
    eprintln!(
        "[shamfinder] {} pairs over {} characters",
        result.db.pair_count(),
        result.db.char_count()
    );
    HomoglyphDb::new(result.db, UcDatabase::embedded())
}

fn default_refs() -> Vec<String> {
    shamfinder::workload::reference_list(10_000)
}

fn cmd_build_db(args: &[String]) -> ExitCode {
    let theta = flag_value(args, "--theta")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let db = build_db(theta);
    let sim = db.simchar();
    println!("theta: {}", sim.theta());
    println!("pairs: {}", sim.pair_count());
    println!("characters: {}", sim.char_count());
    println!("-- top letters (Table 3) --");
    for (letter, count) in sim.latin_profile().into_iter().take(10) {
        println!("  {letter}: {count}");
    }
    println!("-- top blocks (Table 4) --");
    for (block, count) in sim.block_profile().into_iter().take(5) {
        println!("  {block}: {count}");
    }
    if let Some(path) = flag_value(args, "--out") {
        if let Err(e) = std::fs::write(&path, sim.to_text()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("exported to {path}");
    }
    ExitCode::SUCCESS
}

/// `index build <out>` / `index load <path>` / `index stat <path>`:
/// the serve-path snapshot round trip. `build` serializes the flat
/// pair index (interner + union-find closure + CSR, with its source
/// fingerprint) so later processes skip that construction; with
/// `--with-refs [FILE]` it also embeds the fully-indexed reference set
/// (FILE's lines, or the default 10k list) as the v3 reference
/// section, making the file a complete cold-startable detection
/// index. `load` mounts a snapshot back onto freshly built component
/// databases, which also *verifies* it — a snapshot from another font
/// build or confusables revision is rejected with the fingerprint
/// mismatch error instead of trusted, and a full-index snapshot
/// additionally mounts its reference section. `stat` inspects the
/// file without rebuilding anything: version, per-section sizes,
/// checksums and both staleness digests.
fn cmd_index(args: &[String]) -> ExitCode {
    use shamfinder::core::DetectionIndex;
    use shamfinder::simchar::FlatPairIndex;

    let (Some(action), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    // The library default, not a literal: a retuned DEFAULT_THETA must
    // keep `index build`/`load` fingerprint-compatible with library
    // builds.
    let theta = flag_value(args, "--theta")
        .and_then(|v| v.parse().ok())
        .unwrap_or(shamfinder::simchar::DEFAULT_THETA);
    match action.as_str() {
        "build" => {
            let with_refs = args.iter().any(|a| a == "--with-refs");
            let db = build_db(theta);
            if with_refs {
                // `--with-refs` with no FILE (next token absent or a
                // flag) embeds the default reference list.
                let refs: Vec<String> = match flag_value(args, "--with-refs")
                    .filter(|v| !v.starts_with("--"))
                {
                    Some(f) => match std::fs::read_to_string(&f) {
                        Ok(t) => t
                            .lines()
                            .map(|l| l.trim().to_string())
                            .filter(|l| !l.is_empty())
                            .collect(),
                        Err(e) => {
                            eprintln!("error: cannot read {f}: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => default_refs(),
                };
                eprintln!("[shamfinder] indexing {} references …", refs.len());
                let index = DetectionIndex::new(db, refs);
                if let Err(e) = index.write_snapshot_file(path) {
                    eprintln!("error: cannot write snapshot: {e}");
                    return ExitCode::FAILURE;
                }
                let flat = index.db().flat();
                let fp = flat.fingerprint();
                let bytes =
                    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                println!("snapshot: {path} ({bytes} bytes, full index)");
                println!("characters: {}", flat.char_count());
                println!("pairs: {}", flat.pair_count());
                println!("components: {}", flat.component_count());
                println!("references: {}", index.reference_count());
                println!(
                    "fingerprint: font {:#018x} / unicode {:#018x}",
                    fp.font, fp.unicode
                );
                println!("reference digest: {:#018x}", index.reference_digest());
                return ExitCode::SUCCESS;
            }
            let flat = db.flat();
            let mut bytes = Vec::new();
            if let Err(e) = flat.write_to(&mut bytes) {
                eprintln!("error: cannot serialize index: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            let fp = flat.fingerprint();
            println!("snapshot: {path} ({} bytes)", bytes.len());
            println!("characters: {}", flat.char_count());
            println!("pairs: {}", flat.pair_count());
            println!("components: {}", flat.component_count());
            println!(
                "fingerprint: font {:#018x} / unicode {:#018x}",
                fp.font, fp.unicode
            );
            ExitCode::SUCCESS
        }
        "load" => {
            // Mounting validates the recorded fingerprint against the
            // databases this binary would build (same θ ⇒ same pairs);
            // every rejection out of the loader names the file and, for
            // structural damage, the offending section.
            eprintln!("[shamfinder] rebuilding component databases for verification …");
            let font = SynthUnifont::v12();
            let result = build(&font, &BuildConfig { theta, ..BuildConfig::default() });
            // Peek the framing to decide between the pair-only load
            // and the full-index mount (v2 files have no section).
            let section_present = match FlatPairIndex::read_with_section_path(path) {
                Ok((_, section)) => section.is_some(),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if section_present {
                let index = match DetectionIndex::from_snapshot_file(
                    path,
                    result.db,
                    UcDatabase::embedded(),
                ) {
                    Ok(index) => index,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let flat = index.db().flat();
                let fp = flat.fingerprint();
                println!("snapshot {path}: ok (full index mounted, fingerprint verified)");
                println!("characters: {}", flat.char_count());
                println!("pairs: {}", flat.pair_count());
                println!("components: {}", flat.component_count());
                println!("references: {}", index.reference_count());
                println!(
                    "fingerprint: font {:#018x} / unicode {:#018x}",
                    fp.font, fp.unicode
                );
                println!("reference digest: {:#018x}", index.reference_digest());
                return ExitCode::SUCCESS;
            }
            let db = match HomoglyphDb::from_snapshot_file(
                path,
                result.db,
                UcDatabase::embedded(),
            ) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let flat = db.flat();
            let fp = flat.fingerprint();
            println!("snapshot {path}: ok (pair index only, fingerprint verified)");
            println!("characters: {}", flat.char_count());
            println!("pairs: {}", flat.pair_count());
            println!("components: {}", flat.component_count());
            println!(
                "fingerprint: font {:#018x} / unicode {:#018x}",
                fp.font, fp.unicode
            );
            ExitCode::SUCCESS
        }
        "stat" => {
            // Pure file inspection: no database rebuild, readable
            // errors on v1/v2/corrupt files.
            let stat = match FlatPairIndex::snapshot_stat_path(path) {
                Ok(stat) => stat,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("snapshot: {path}");
            println!("version: {}", stat.version);
            println!(
                "fingerprint: font {:#018x} / unicode {:#018x}",
                stat.fingerprint.font, stat.fingerprint.unicode
            );
            println!(
                "pair payload: {} bytes (checksum {:#018x})",
                stat.pair_payload_bytes, stat.pair_checksum
            );
            for section in &stat.sections {
                println!(
                    "  {:<24} {:>9} elements {:>10} bytes",
                    section.name, section.elements, section.bytes
                );
            }
            match &stat.reference_section {
                Some(section) => {
                    println!(
                        "reference section: {} bytes (checksum {:#018x})",
                        stat.reference_bytes, stat.reference_checksum
                    );
                    match shamfinder::core::reference_section_summary(section) {
                        Ok((digest, count)) => {
                            println!("  references: {count}");
                            println!("  list digest: {digest:#018x}");
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => println!("reference section: absent (pair-only snapshot)"),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(domain) = args.first() else { return usage() };
    let domain = match DomainName::parse(domain) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: invalid domain: {e}");
            return ExitCode::FAILURE;
        }
    };
    let refs: Vec<String> = match flag_value(args, "--refs") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => default_refs(),
    };
    let db = build_db(4);
    let tld = domain.tld().to_string();
    let fw = Framework::new(db.simchar().clone(), UcDatabase::embedded(), refs, &tld);
    let report = fw.run(std::slice::from_ref(&domain));
    if report.detections.is_empty() {
        println!("{}: no homograph detected", domain.as_ascii());
        return ExitCode::SUCCESS;
    }
    for det in &report.detections {
        let warning = Warning::from_detection(det, &tld);
        print!("{}", warning.render_text());
    }
    ExitCode::from(1)
}

fn cmd_scan(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { return usage() };
    let tld = flag_value(args, "--tld").unwrap_or_else(|| "com".into());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Accept either a zone file or a flat domain list.
    let domains: Vec<DomainName> = if text.contains("$ORIGIN") || text.contains(" IN ") {
        let (zone, errors) = shamfinder::dns::parse_lenient(&text, &tld);
        if !errors.is_empty() {
            eprintln!("[shamfinder] skipped {} malformed zone lines", errors.len());
        }
        zone.owner_names().into_iter().cloned().collect()
    } else {
        let (names, bad) = shamfinder::dns::parse_domain_list(&text);
        if bad > 0 {
            eprintln!("[shamfinder] skipped {bad} malformed list lines");
        }
        names
    };
    let refs: Vec<String> = match flag_value(args, "--refs-file") {
        Some(f) => match std::fs::read_to_string(&f) {
            Ok(t) => t.lines().map(|l| l.trim().to_string()).filter(|l| !l.is_empty()).collect(),
            Err(e) => {
                eprintln!("error: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => default_refs(),
    };
    let db = build_db(4);
    let fw = Framework::new(db.simchar().clone(), UcDatabase::embedded(), refs, &tld);
    let report = fw.run(&domains);
    println!(
        "scanned {} domains ({} IDNs): {} homographs",
        report.total_domains,
        report.idn_count,
        report.detections.len()
    );
    for det in &report.detections {
        println!(
            "  {} -> imitates {}.{} ({} substitution{})",
            det.idn_ascii,
            det.reference,
            tld,
            det.substitutions.len(),
            if det.substitutions.len() == 1 { "" } else { "s" }
        );
    }
    ExitCode::SUCCESS
}

fn cmd_revert(args: &[String]) -> ExitCode {
    let Some(input) = args.first() else { return usage() };
    // Accept either a stem or a full (possibly ACE) domain.
    let stem = match DomainName::parse(input) {
        Ok(d) if d.label_count() > 1 => d.unicode_without_tld().unwrap_or_default(),
        _ => shamfinder::punycode::ace::to_unicode(input)
            .unwrap_or_else(|_| input.to_string()),
    };
    let db = build_db(4);
    match revert_stem(&db, &stem) {
        Reverted::Original(original) => {
            println!("{stem} -> {original}");
            ExitCode::SUCCESS
        }
        Reverted::Partial(partial, failed) => {
            println!("{stem} -> {partial} (unresolved: {failed:?})");
            ExitCode::from(1)
        }
    }
}

fn cmd_homoglyphs(args: &[String]) -> ExitCode {
    let Some(input) = args.first() else { return usage() };
    let target: char = if let Some(hex) = input.strip_prefix("U+").or_else(|| input.strip_prefix("u+")) {
        match u32::from_str_radix(hex, 16).ok().and_then(char::from_u32) {
            Some(c) => c,
            None => {
                eprintln!("error: bad code point {input:?}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match input.chars().next() {
            Some(c) => c,
            None => return usage(),
        }
    };
    let db = build_db(4);
    let twins = db.homoglyphs_of(target as u32);
    println!("homoglyphs of '{target}' (U+{:04X}): {}", target as u32, twins.len());
    for cp in twins {
        let c = char::from_u32(cp).unwrap_or('\u{FFFD}');
        let block = CodePoint::new(cp)
            .and_then(block_of)
            .map_or("?", |b| b.name);
        let source = db
            .source_of(target as u32, cp)
            .map_or("", |s| match s {
                shamfinder::simchar::PairSource::SimChar => " [SimChar]",
                shamfinder::simchar::PairSource::Uc => " [UC]",
                shamfinder::simchar::PairSource::Both => " [both]",
            });
        println!("  '{c}' U+{cp:04X}  {block}{source}");
    }
    ExitCode::SUCCESS
}

fn cmd_surface(args: &[String]) -> ExitCode {
    let Some(label) = args.first() else { return usage() };
    let table = match flag_value(args, "--tld").as_deref() {
        Some("jp") => IdnTable::jp(),
        Some("de") => IdnTable::de(),
        Some("kr") => IdnTable::kr(),
        Some("rf") => IdnTable::rf(),
        _ => IdnTable::com(),
    };
    let db = build_db(4);
    let surface = table.homograph_surface(&db, label);
    println!(
        "single-substitution homograph surface of {label:?} under .{}: {surface}",
        table.tld
    );
    for c in label.chars() {
        let options = table.registrable_homoglyphs(&db, c);
        if !options.is_empty() {
            let shown: String = options.iter().take(12).collect();
            println!("  '{c}': {} option(s) — {shown}", options.len());
        }
    }
    ExitCode::SUCCESS
}

/// `serve-feed`: run the fault-tolerant ingest front-end over a feed —
/// by default a synthetic multi-TLD registration stream (optionally
/// with a seeded fault schedule), or a master-file zone text with
/// `--zone FILE`. Prints the per-TLD detection table plus the
/// robustness ledger (shed/quarantined/retries/panics/folds and the
/// accounting identity).
fn cmd_serve_feed(args: &[String]) -> ExitCode {
    use shamfinder::core::{
        Backpressure, IngestConfig, IngestService, RetryPolicy, ZoneTextFeed,
    };
    use shamfinder::workload::{FaultSchedule, FaultyZoneFeed, FeedStats};

    let tlds: Vec<String> = flag_value(args, "--tlds")
        .unwrap_or_else(|| "com,net,org".into())
        .split(',')
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty())
        .collect();
    let queue = flag_value(args, "--queue").and_then(|v| v.parse().ok()).unwrap_or(1024);
    let batch = flag_value(args, "--batch").and_then(|v| v.parse().ok()).unwrap_or(1024);
    let policy = match flag_value(args, "--policy").as_deref() {
        None | Some("block") => Backpressure::Block,
        Some("shed") => Backpressure::Shed,
        Some(other) => {
            eprintln!("error: unknown backpressure policy {other:?} (block|shed)");
            return ExitCode::FAILURE;
        }
    };
    let faults: u32 =
        flag_value(args, "--faults").and_then(|v| v.parse().ok()).unwrap_or(0);
    let seed: u64 = flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(7);

    let refs: Vec<String> = match flag_value(args, "--refs-file") {
        Some(f) => match std::fs::read_to_string(&f) {
            Ok(t) => t
                .lines()
                .map(|l| l.trim().to_string())
                .filter(|l| !l.is_empty())
                .collect(),
            Err(e) => {
                eprintln!("error: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => default_refs(),
    };
    let db = build_db(4);
    let index = shamfinder::core::DetectionIndex::shared(db, refs);
    let config = IngestConfig {
        queue_capacity: queue,
        batch_capacity: batch,
        backpressure: policy,
        tlds: Some(tlds.clone()),
        retry: RetryPolicy::default(),
        ..IngestConfig::default()
    };
    let service = IngestService::new(index, config);

    let report = if let Some(zone_path) = flag_value(args, "--zone") {
        let origin = flag_value(args, "--tld").unwrap_or_else(|| "com".into());
        let file = match std::fs::File::open(&zone_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot open {zone_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let feed = ZoneTextFeed::new(zone_path.clone(), &origin, file);
        eprintln!("[shamfinder] ingesting zone {zone_path} (.{origin}) …");
        service.run(vec![Box::new(feed)])
    } else {
        let events_scale: usize =
            flag_value(args, "--events").and_then(|v| v.parse().ok()).unwrap_or(20_000);
        let workload =
            shamfinder::workload::Workload::generate(shamfinder::workload::WorkloadConfig {
                benign_ascii: events_scale.saturating_sub(events_scale / 10),
                benign_idns: events_scale / 10,
                reference_size: 2_000,
                homograph_permille: 100,
                seed,
            });
        let feed_shape = shamfinder::workload::MultiTldConfig {
            base: shamfinder::workload::StreamConfig {
                churn_every: 4096,
                churn_size: 2,
                seed,
            },
            tlds: tlds.clone(),
        };
        let events = shamfinder::workload::multi_tld_event_stream(&workload, &feed_shape);
        let schedule = if faults > 0 {
            FaultSchedule::seeded(seed, events.len() as u64, faults)
        } else {
            FaultSchedule::none()
        };
        eprintln!(
            "[shamfinder] replaying {} synthetic events over {} ({}‰ faults, seed {seed}) …",
            events.len(),
            tlds.join("/"),
            faults,
        );
        let stats = FeedStats::shared();
        let feed = FaultyZoneFeed::new("synthetic", events, schedule, stats);
        service.run(vec![Box::new(feed)])
    };

    println!("-- per-TLD detections --");
    for lane in &report.router.per_tld {
        println!(
            "  .{}: {} domains, {} IDNs, {} homographs",
            lane.tld,
            lane.report.total_domains,
            lane.report.idn_count,
            lane.report.detections.len()
        );
    }
    if report.router.unrouted_domains > 0 {
        println!("  (unrouted: {})", report.router.unrouted_domains);
    }
    println!("-- robustness --");
    println!("  shed: {}", report.shed);
    println!("  quarantined: {}", report.quarantined);
    println!("  lost: {}", report.lost);
    println!("  lane panics: {}", report.lane_panics);
    println!("  lane folds: {}", report.lane_folds);
    for feed in &report.feeds {
        println!(
            "  feed {}: {} registrations, {} churns, {} quarantined, {} retries, {:?}{}",
            feed.name,
            feed.registrations,
            feed.churns,
            feed.quarantined,
            feed.retries,
            feed.outcome,
            feed.last_error.as_deref().map_or(String::new(), |e| format!(" ({e})")),
        );
    }
    for sample in &report.quarantine {
        println!("  quarantine[{}@{}]: {}", sample.feed, sample.position, sample.detail);
    }
    println!(
        "  accounted: {} (routed {} + shed {} + lost {})",
        report.events_accounted(),
        report.router.total_domains(),
        report.shed,
        report.lost
    );
    let exec = report.exec();
    let pool = shamfinder::core::pool_stats();
    println!("-- scheduling --");
    println!(
        "  detect batches: {} ({} inline), {} shards, shard len {}..{}, ≤ {} workers",
        exec.batches,
        exec.inline_batches,
        exec.shards,
        exec.min_shard_len,
        exec.max_shard_len,
        exec.max_workers
    );
    println!(
        "  pool: {} workers ({} busy, {} queued), jobs {}/{} executed/submitted, \
busy {:.1} ms, parked {:.1} ms, occupancy {:.0}%",
        pool.workers,
        pool.busy_workers,
        pool.queue_depth,
        pool.jobs_executed,
        pool.jobs_submitted,
        pool.busy_nanos as f64 / 1e6,
        pool.parked_nanos as f64 / 1e6,
        pool.occupancy() * 100.0
    );
    if let Some(path) = flag_value(args, "--metrics-json") {
        let json = shamfinder::metrics::ingest_metrics_json(&report, &exec, &pool);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[shamfinder] wrote metrics to {path}");
    }
    ExitCode::SUCCESS
}

/// `scan-zone <FILE...>`: the GB-scale batch pipeline — streaming
/// chunked reads on a reader thread, allocation-conscious line scan,
/// consecutive + windowed owner dedup, blacklist suffix filtering, and
/// occupancy-adaptive fan-out into the per-TLD router. Prints the
/// per-TLD accounting table, the `records_accounted` identity and the
/// scheduling ledger; `--metrics-json` writes the machine-readable
/// document (same `exec`/`pool`/`per_tld` schema as `serve-feed`).
fn cmd_scan_zone(args: &[String]) -> ExitCode {
    use shamfinder::core::scan::{tld_from_path, ScanConfig, ZoneScanner};
    use shamfinder::core::SessionRouter;
    use shamfinder::web::Blacklist;
    use std::path::Path;

    // Positional FILE arguments: everything that is neither a flag nor
    // a flag's value.
    const VALUE_FLAGS: [&str; 7] = [
        "--tld",
        "--refs-file",
        "--blacklist",
        "--batch",
        "--window",
        "--chunk",
        "--metrics-json",
    ];
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with("--") {
            eprintln!("error: unknown flag {a:?}");
            return usage();
        } else {
            files.push(a.clone());
            i += 1;
        }
    }
    if files.is_empty() {
        return usage();
    }

    let batch: usize =
        flag_value(args, "--batch").and_then(|v| v.parse().ok()).unwrap_or(1024);
    let window: usize =
        flag_value(args, "--window").and_then(|v| v.parse().ok()).unwrap_or(8_192);
    let chunk: usize =
        flag_value(args, "--chunk").and_then(|v| v.parse().ok()).unwrap_or(1 << 20);

    let mut blacklists: Vec<Blacklist> = Vec::new();
    for w in args.windows(2) {
        if w[0] == "--blacklist" {
            let path = &w[1];
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let (bl, bad) = Blacklist::from_hosts_file(path, &text);
                    eprintln!(
                        "[shamfinder] blacklist {path}: {} entries ({bad} junk lines)",
                        bl.len()
                    );
                    blacklists.push(bl);
                }
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let refs: Vec<String> = match flag_value(args, "--refs-file") {
        Some(f) => match std::fs::read_to_string(&f) {
            Ok(t) => t
                .lines()
                .map(|l| l.trim().to_string())
                .filter(|l| !l.is_empty())
                .collect(),
            Err(e) => {
                eprintln!("error: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => default_refs(),
    };
    let db = build_db(4);
    let index = shamfinder::core::DetectionIndex::shared(db, refs);
    let router = SessionRouter::new(index).with_batch_capacity(batch);
    let config = ScanConfig {
        chunk_bytes: chunk,
        dedup_window: window,
        batch_capacity: batch,
        blacklists,
        ..ScanConfig::default()
    };
    let mut scanner = ZoneScanner::new(router, config);

    let tld_override = flag_value(args, "--tld");
    for file in &files {
        let path = Path::new(file);
        let tld = tld_override
            .clone()
            .or_else(|| tld_from_path(path))
            .unwrap_or_else(|| "com".into());
        eprintln!("[shamfinder] scanning {file} as .{tld} …");
        if let Err(e) = scanner.scan_file(&tld, path) {
            eprintln!("error: scanning {file}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let report = scanner.finish();
    let totals = report.totals();
    println!("-- per-TLD scan --");
    for (tld, s) in &report.per_tld {
        let lane = report.router.per_tld.iter().find(|l| &l.tld == tld);
        let detections = lane.map_or(0, |l| l.report.detections.len());
        println!(
            "  .{tld}: {:.1} MB, {} lines, {} records → {} routed \
(dedup {} + {}, blacklisted {}, quarantined {}), {} detections in {:.2}s \
({:.0} rec/s, {:.1} MB/s)",
            s.bytes as f64 / 1e6,
            s.lines,
            s.records,
            s.routed,
            s.dedup_consecutive,
            s.dedup_window,
            s.blacklisted,
            s.quarantined,
            detections,
            s.elapsed_secs,
            if s.elapsed_secs > 0.0 { s.records as f64 / s.elapsed_secs } else { 0.0 },
            if s.elapsed_secs > 0.0 { s.bytes as f64 / 1e6 / s.elapsed_secs } else { 0.0 },
        );
    }
    for sample in &report.quarantine_samples {
        println!("  quarantine: {sample}");
    }
    println!(
        "  accounted: {} parsed = {} routed + {} deduped + {} blacklisted + {} quarantined",
        totals.parsed(),
        totals.routed,
        totals.deduped(),
        totals.blacklisted,
        totals.quarantined
    );
    if let Err(e) = report.verify_accounting() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let exec = report.router.exec();
    let pool = shamfinder::core::pool_stats();
    println!("-- scheduling --");
    println!(
        "  detect batches: {} ({} inline), {} shards, shard len {}..{}, ≤ {} workers",
        exec.batches,
        exec.inline_batches,
        exec.shards,
        exec.min_shard_len,
        exec.max_shard_len,
        exec.max_workers
    );
    println!(
        "  pool: {} workers, occupancy {:.0}%",
        pool.workers,
        pool.occupancy() * 100.0
    );

    if let Some(path) = flag_value(args, "--metrics-json") {
        let json = shamfinder::metrics::scan_metrics_json(&report, &pool);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[shamfinder] wrote metrics to {path}");
    }
    ExitCode::SUCCESS
}

/// `gen-zone <FILE>`: write a deterministic synthetic TLD zone file at
/// a byte or record target — the fixture generator behind the scan-zone
/// smokes and the GB-scale bench.
fn cmd_gen_zone(args: &[String]) -> ExitCode {
    use shamfinder::workload::{write_synthetic_zone, ZoneGenConfig};

    let Some(out_path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let mut cfg = ZoneGenConfig {
        tld: flag_value(args, "--tld").unwrap_or_else(|| "com".into()),
        seed: flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(11),
        ..ZoneGenConfig::default()
    };
    if let Some(mb) = flag_value(args, "--mb").and_then(|v| v.parse::<u64>().ok()) {
        cfg.target_bytes = mb << 20;
        cfg.target_records = 0;
    }
    if let Some(n) = flag_value(args, "--records").and_then(|v| v.parse().ok()) {
        cfg.target_records = n;
        cfg.target_bytes = 0;
    }
    if let Some(p) = flag_value(args, "--malformed").and_then(|v| v.parse().ok()) {
        cfg.malformed_permille = p;
    }
    if let Some(p) = flag_value(args, "--homographs").and_then(|v| v.parse().ok()) {
        cfg.homograph_permille = p;
    }

    let file = match std::fs::File::create(out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot create {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = std::io::BufWriter::new(file);
    match write_synthetic_zone(&mut writer, &cfg) {
        Ok(stats) => {
            println!(
                "wrote {out_path}: {:.1} MB, {} lines, {} records over {} owners \
({} homographs, {} malformed), seed {}",
                stats.bytes as f64 / 1e6,
                stats.lines,
                stats.records,
                stats.owners,
                stats.homographs,
                stats.malformed,
                cfg.seed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: writing {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    let rest = &args[1..];
    match command.as_str() {
        "build-db" => cmd_build_db(rest),
        "index" => cmd_index(rest),
        "check" => cmd_check(rest),
        "scan" => cmd_scan(rest),
        "serve-feed" => cmd_serve_feed(rest),
        "scan-zone" => cmd_scan_zone(rest),
        "gen-zone" => cmd_gen_zone(rest),
        "revert" => cmd_revert(rest),
        "homoglyphs" => cmd_homoglyphs(rest),
        "surface" => cmd_surface(rest),
        _ => usage(),
    }
}
