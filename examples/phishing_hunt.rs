//! Phishing hunt: the full measurement pipeline of the paper's §5–6 on a
//! synthetic `.com` world — ingest zone + domain list, detect homographs,
//! resolve and port-scan them, classify the live ones, and check
//! blacklists.
//!
//! ```sh
//! cargo run --release --example phishing_hunt
//! ```
//!
//! Expected output (abridged): the paper's Tables 6–13 computed over the
//! synthetic world (~100 K domains, a few seconds in release mode):
//!
//! ```text
//! == Table 8: detected IDN homographs per homoglyph DB (paper: UC 436, SimChar 3,110, union 3,280) ==
//! Homoglyph DB  Number
//! --------------------
//! SimChar        1,037
//! UC               146
//! UC ∪ SimChar   1,093
//!
//! == Table 9: top targeted domains … ==
//! 1     myetherwallet.com            57
//! 2            google.com            38
//! …
//! ```

use shamfinder::measure::{CharDbContext, Study};
use shamfinder::workload::{Workload, WorkloadConfig};

fn main() {
    // A mid-sized world: ~100k domains, ~1/3 of the paper's homograph
    // population — runs in a few seconds.
    let config = WorkloadConfig {
        benign_ascii: 95_000,
        benign_idns: 4_000,
        reference_size: 10_000,
        homograph_permille: 330,
        seed: 0xCAFE,
    };

    println!("building homoglyph databases …");
    let ctx = CharDbContext::create();

    println!("generating the synthetic .com world …");
    let workload = Workload::generate(config);

    println!("running the study …\n");
    let study = Study::run(workload, ctx.build.db.clone(), ctx.uc.clone());

    println!("{}", study.table6().render());
    println!("{}", study.table8().render());
    println!("{}", study.table9(5).render());

    let analysis = study.active_analysis();
    println!("{}", study.table10(&analysis).render());
    let (t12, t13) = study.table12_13(&analysis);
    println!("{}", t12.render());
    println!("{}", t13.render());
    println!("{}", study.table14().render());

    // Who is being phished hardest? Rank by passive DNS.
    println!("{}", study.table11(&analysis, 5).render());

    // And the timing story of §4.2.
    println!("{}", study.timing().render());
}
