//! Phishing hunt, production-style: drive the four-layer detection
//! stack end to end over an *interleaved multi-TLD* zone-diff stream.
//!
//! The paper's §5–6 measurement is a batch pass over one TLD's zone
//! snapshot; a production monitor instead ingests diffs from several
//! TLD feeds at once — newly-registered `.com`/`.net`/`.org` names
//! arriving mixed together, with the popularity reference list
//! churning globally underneath. This example wires the layers
//! together:
//!
//! 1. **Index layer** — one immutable `DetectionIndex` (homoglyph
//!    database + indexed reference list), built once and shared via
//!    `Arc` by every per-TLD pipeline; nothing is cloned.
//! 2. **Router layer** — a `SessionRouter` demultiplexes the
//!    interleaved feed into one `DetectorSession` per TLD, buffering
//!    registrations into batches that shard across the persistent
//!    worker pool (`SHAM_THREADS` sizes it).
//! 3. **Session layer** — each lane ingests its batches and the
//!    global reference churn incrementally.
//! 4. **Driver layer** — `sham_workload::stream` turns the synthetic
//!    world into the multi-TLD event feed.
//!
//! ```sh
//! cargo run --release --example phishing_hunt
//! ```
//!
//! Expected output (abridged; ~100 K domains, a few seconds in
//! release mode):
//!
//! ```text
//! ingesting 103,0xx zone-diff events across 3 TLDs (batch 1,024, churn every 4,096) …
//! == routed multi-TLD ingest ==
//! TLD    domains    IDNs    detections
//! com    5x,xxx     2,xxx   5xx
//! net    2x,xxx     1,xxx   2xx
//! org    2x,xxx     1,xxx   2xx
//! total  103,0xx    4,xxx   1,0xx
//! throughput              x.xM events/s
//!
//! == top targeted domains (all lanes) ==
//! 1  myetherwallet   5x
//! …
//! router ≡ per-TLD batch cross-check: ok (3 lanes identical)
//! ```
//!
//! The cross-check at the end replays the same feed without churn and
//! asserts each lane's report is identical to a one-shot
//! `Framework::run` over that TLD's slice of the corpus — the
//! equivalence the router refactor pins (see
//! `crates/core/tests/router_equivalence.rs`).

use shamfinder::core::{DetectionIndex, Framework, SessionRouter};
use shamfinder::measure::{thousands, CharDbContext, TextTable};
use shamfinder::punycode::DomainName;
use shamfinder::simchar::HomoglyphDb;
use shamfinder::workload::{
    multi_tld_event_stream, MultiTldConfig, Workload, WorkloadConfig, ZoneEvent,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Registrations a router lane buffers before one batch flush — the
/// ingest granularity a zone provider's diff API would deliver.
const BATCH: usize = 1_024;

fn main() {
    // A mid-sized world: ~100k domains, ~1/3 of the paper's homograph
    // population — runs in a few seconds.
    let config = WorkloadConfig {
        benign_ascii: 95_000,
        benign_idns: 4_000,
        reference_size: 10_000,
        homograph_permille: 330,
        seed: 0xCAFE,
    };

    println!("building homoglyph databases …");
    let ctx = CharDbContext::create();

    println!("generating the synthetic multi-TLD world …");
    let workload = Workload::generate(config);

    // Layer 1: one immutable index for the whole process. Every lane
    // the router opens below holds the same Arc — no HomoglyphDb
    // clone, no re-indexed reference list, however many TLDs arrive.
    let index = DetectionIndex::shared(
        HomoglyphDb::new(ctx.build.db.clone(), ctx.uc.clone()),
        workload.references.iter().cloned(),
    );

    // Layer 4: the interleaved .com/.net/.org zone-diff feed.
    let feed = MultiTldConfig::default();
    let events = multi_tld_event_stream(&workload, &feed);
    println!(
        "ingesting {} zone-diff events across {} TLDs (batch {}, churn every {}) …",
        thousands(events.len() as u64),
        feed.tlds.len(),
        thousands(BATCH as u64),
        thousands(feed.base.churn_every as u64),
    );

    // Layers 2–3: the router demultiplexes the feed into per-TLD
    // sessions and batches each lane through the shared worker pool.
    let t0 = Instant::now();
    let mut router = SessionRouter::new(Arc::clone(&index)).with_batch_capacity(BATCH);
    let mut churn_events = 0usize;
    for event in &events {
        match event {
            ZoneEvent::Registered(name) => {
                router.push_domains(std::iter::once(name));
            }
            ZoneEvent::ReferenceChurn { added, removed } => {
                // Global churn: flushes every lane (pending names were
                // observed under the pre-churn list), then edits every
                // session's overlay.
                router.apply_reference_diff(added, removed);
                churn_events += 1;
            }
        }
    }
    let report = router.into_report();
    let elapsed = t0.elapsed().as_secs_f64();

    let mut summary = TextTable::new(
        "routed multi-TLD ingest",
        &["TLD", "Domains", "IDNs", "Detections"],
    );
    for lane in &report.per_tld {
        summary.row(&[
            lane.tld.clone(),
            thousands(lane.report.total_domains as u64),
            thousands(lane.report.idn_count as u64),
            thousands(lane.report.detections.len() as u64),
        ]);
    }
    summary.row(&[
        "total".into(),
        thousands(report.total_domains() as u64),
        thousands(report.idn_count() as u64),
        thousands(report.detection_count() as u64),
    ]);
    println!("{}", summary.render());
    println!(
        "reference churn: {churn_events} events ({} stems in / {} out each)",
        feed.base.churn_size, feed.base.churn_size
    );
    println!(
        "throughput: {:.2}M events/s\n",
        events.len() as f64 / elapsed / 1e6
    );

    // Table 9's question, answered fleet-wide from the live lanes: who
    // is being imitated hardest right now, across every TLD?
    let mut per_target: HashMap<&str, HashSet<&str>> = HashMap::new();
    for d in report.detections() {
        per_target
            .entry(&d.reference)
            .or_default()
            .insert(d.idn_ascii.as_str());
    }
    let mut rows: Vec<(&str, usize)> =
        per_target.into_iter().map(|(t, set)| (t, set.len())).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut top = TextTable::new(
        "top targeted domains (all lanes)",
        &["Rank", "Reference", "# homographs"],
    );
    for (i, (target, n)) in rows.into_iter().take(5).enumerate() {
        top.row(&[(i + 1).to_string(), target.to_string(), n.to_string()]);
    }
    println!("{}", top.render());

    // Cross-check: replay the registrations without churn through a
    // fresh router, and demand each lane's report be *identical* to a
    // one-shot `Framework::run` over that TLD's slice of the feed —
    // routing and batching must be unobservable in the results.
    let mut quiet = SessionRouter::new(Arc::clone(&index)).with_batch_capacity(BATCH);
    let mut per_tld_corpus: HashMap<&str, Vec<DomainName>> = HashMap::new();
    for event in &events {
        if let ZoneEvent::Registered(name) = event {
            quiet.push_domains(std::iter::once(name));
            per_tld_corpus.entry(name.tld()).or_default().push(name.clone());
        }
    }
    let routed = quiet.into_report();
    assert_eq!(routed.per_tld.len(), per_tld_corpus.len());
    for lane in &routed.per_tld {
        let corpus = &per_tld_corpus[lane.tld.as_str()];
        let fw = Framework::with_shared_index(Arc::clone(&index), &lane.tld);
        let batch = fw.run(corpus);
        assert_eq!(lane.report, batch, "lane .{} diverged from batch run", lane.tld);
    }
    println!(
        "router ≡ per-TLD batch cross-check: ok ({} lanes identical, {} detections)",
        routed.per_tld.len(),
        thousands(routed.detection_count() as u64)
    );
}
