//! Phishing hunt, production-style: drive the three-layer detection
//! stack end to end over a zone-diff event stream.
//!
//! The paper's §5–6 measurement is a batch pass over a zone snapshot;
//! a production monitor instead ingests *diffs* — newly-registered
//! names trickling in, with the popularity reference list itself
//! churning underneath. This example wires the layers together:
//!
//! 1. **Index layer** — one immutable `DetectionIndex` (homoglyph
//!    database + indexed reference list), built once and shared via
//!    `Arc` by every pipeline below; nothing is cloned.
//! 2. **Session layer** — a `DetectorSession` drains the feed in
//!    bounded batches and applies reference churn incrementally.
//! 3. **Driver layer** — `sham_workload::stream` turns the synthetic
//!    `.com` world into the event feed (registrations + churn).
//!
//! ```sh
//! cargo run --release --example phishing_hunt
//! ```
//!
//! Expected output (abridged; ~100 K domains, a few seconds in
//! release mode):
//!
//! ```text
//! ingesting 103,0xx zone-diff events (batch 1,024, churn every 4,096) …
//!   … 50,000 events: 5xx homographs so far
//! == streaming ingest ==
//! events                  103,0xx
//! reference churn events  2x (2 stems in / 2 out each)
//! detections              1,0xx
//! throughput              x.xM events/s
//!
//! == top targeted domains (streaming session) ==
//! 1  myetherwallet.com   5x
//! 2  google.com          3x
//! …
//! streaming ≡ batch cross-check: ok (identical reports)
//! ```
//!
//! The cross-check at the end replays the same corpus without churn
//! and asserts the session's report is identical to one-shot
//! `Framework::run` — the equivalence the streaming refactor pins.

use shamfinder::core::{DetectionIndex, DetectorSession, Framework};
use shamfinder::measure::{thousands, CharDbContext, TextTable};
use shamfinder::punycode::DomainName;
use shamfinder::simchar::HomoglyphDb;
use shamfinder::workload::{
    event_stream, union_corpus, StreamConfig, Workload, WorkloadConfig, ZoneEvent,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Registrations per session batch — the ingest granularity a zone
/// provider's diff API would deliver.
const BATCH: usize = 1_024;

fn main() {
    // A mid-sized world: ~100k domains, ~1/3 of the paper's homograph
    // population — runs in a few seconds.
    let config = WorkloadConfig {
        benign_ascii: 95_000,
        benign_idns: 4_000,
        reference_size: 10_000,
        homograph_permille: 330,
        seed: 0xCAFE,
    };

    println!("building homoglyph databases …");
    let ctx = CharDbContext::create();

    println!("generating the synthetic .com world …");
    let workload = Workload::generate(config);

    // Layer 1: one immutable index for the whole process. Every
    // framework and session below holds the same Arc — no HomoglyphDb
    // clone, no re-indexed reference list.
    let index = DetectionIndex::shared(
        HomoglyphDb::new(ctx.build.db.clone(), ctx.uc.clone()),
        workload.references.iter().cloned(),
    );
    let fw = Framework::with_shared_index(Arc::clone(&index), "com");

    // Layer 3: the zone-diff feed.
    let stream_config = StreamConfig::default();
    let events = event_stream(&workload, &stream_config);
    println!(
        "ingesting {} zone-diff events (batch {}, churn every {}) …",
        thousands(events.len() as u64),
        thousands(BATCH as u64),
        thousands(stream_config.churn_every as u64),
    );

    // Layer 2: a streaming session drains the feed.
    let t0 = Instant::now();
    let mut session = fw.session();
    let mut batch: Vec<DomainName> = Vec::with_capacity(BATCH);
    let mut churn_events = 0usize;
    for (i, event) in events.iter().enumerate() {
        match event {
            ZoneEvent::Registered(name) => {
                batch.push(name.clone());
                if batch.len() == BATCH {
                    session.push_domains(&batch);
                    batch.clear();
                }
            }
            ZoneEvent::ReferenceChurn { added, removed } => {
                // Flush pending registrations first: they were observed
                // under the pre-churn reference list.
                session.push_domains(&batch);
                batch.clear();
                session.apply_reference_diff(added, removed);
                churn_events += 1;
            }
        }
        if (i + 1) % 50_000 == 0 {
            println!(
                "  … {} events: {} homographs so far",
                thousands((i + 1) as u64),
                thousands(session.detections().len() as u64)
            );
        }
    }
    session.push_domains(&batch);
    let elapsed = t0.elapsed().as_secs_f64();
    let streamed = session.into_report();

    let mut summary = TextTable::new("streaming ingest", &["Metric", "Value"]);
    summary.row(&["events".into(), thousands(events.len() as u64)]);
    summary.row(&[
        "reference churn events".into(),
        format!(
            "{churn_events} ({} stems in / {} out each)",
            stream_config.churn_size, stream_config.churn_size
        ),
    ]);
    summary.row(&["domains seen".into(), thousands(streamed.total_domains as u64)]);
    summary.row(&["IDNs matched".into(), thousands(streamed.idn_count as u64)]);
    summary.row(&["detections".into(), thousands(streamed.detections.len() as u64)]);
    summary.row(&[
        "throughput".into(),
        format!("{:.2}M events/s", events.len() as f64 / elapsed / 1e6),
    ]);
    println!("{}", summary.render());

    // Table 9's question, answered from the live session: who is being
    // imitated hardest right now?
    let mut per_target: HashMap<&str, HashSet<&str>> = HashMap::new();
    for d in &streamed.detections {
        per_target
            .entry(&d.reference)
            .or_default()
            .insert(d.idn_ascii.as_str());
    }
    let mut rows: Vec<(&str, usize)> =
        per_target.into_iter().map(|(t, set)| (t, set.len())).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut top = TextTable::new(
        "top targeted domains (streaming session)",
        &["Rank", "Domain", "# homographs"],
    );
    for (i, (target, n)) in rows.into_iter().take(5).enumerate() {
        top.row(&[(i + 1).to_string(), format!("{target}.com"), n.to_string()]);
    }
    println!("{}", top.render());

    // Cross-check: the same corpus, streamed without churn, must fold
    // into a report identical to one-shot batch detection — batch and
    // streaming share one code path.
    let corpus = union_corpus(&workload);
    let batch_report = fw.run(&corpus);
    let mut quiet = DetectorSession::new(Arc::clone(&index), "com");
    for chunk in corpus.chunks(BATCH) {
        quiet.push_domains(chunk);
    }
    let quiet_report = quiet.into_report();
    assert_eq!(quiet_report, batch_report, "streaming and batch reports diverged");
    println!(
        "streaming ≡ batch cross-check: ok (identical reports, {} detections)",
        thousands(batch_report.detections.len() as u64)
    );
}
