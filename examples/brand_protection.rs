//! Brand protection: enumerate the registrable homograph space of a
//! brand, check which variants are already registered, and produce a
//! defensive-registration shortlist — the "direct countermeasure"
//! use-case the paper's abstract calls out.
//!
//! ```sh
//! cargo run --release --example brand_protection -- mybrand
//! ```
//!
//! Expected output (abridged): the registrable single-substitution
//! homograph space of the brand, cross-checked against the synthetic
//! registry, ending with a defensive-registration shortlist:
//!
//! ```text
//! 69 single-substitution homographs of "mybrand" are registrable:
//!
//!   ɱybrand  (pos 0: 'ɱ' U+0271)  xn--ybrand-o3c.com  — available
//!   ṃybrand  (pos 0: 'ṃ' U+1E43)  xn--ybrand-2s7b.com  — ALREADY REGISTERED ⚠
//!   …
//! ```

use shamfinder::prelude::*;
use std::collections::BTreeSet;

/// Enumerates single-substitution homographs of `stem` that are
/// registrable under IDNA rules.
fn single_substitution_homographs(db: &HomoglyphDb, stem: &str) -> Vec<(String, usize, char)> {
    let chars: Vec<char> = stem.chars().collect();
    let mut out = Vec::new();
    for (pos, &c) in chars.iter().enumerate() {
        for candidate in db.homoglyphs_of(c as u32) {
            let Some(sub) = char::from_u32(candidate) else { continue };
            if sub.is_ascii() {
                continue; // LDH swaps are typo-squats, not homographs
            }
            let mut variant = chars.clone();
            variant[pos] = sub;
            let variant: String = variant.into_iter().collect();
            if sham_unicode::idna::label_is_registrable(&variant) {
                out.push((variant, pos, sub));
            }
        }
    }
    out
}

fn main() {
    let brand = std::env::args().nth(1).unwrap_or_else(|| "paypal".to_string());

    println!("building homoglyph database …");
    let font = SynthUnifont::v12();
    let result = build(&font, &BuildConfig::default());
    let db = HomoglyphDb::new(result.db, UcDatabase::embedded());

    let variants = single_substitution_homographs(&db, &brand);
    println!(
        "\n{} single-substitution homographs of {brand:?} are registrable:\n",
        variants.len()
    );

    // Simulate the defensive check against a registry: here a small
    // synthetic zone in which two of the variants are already taken.
    let mut registered = BTreeSet::new();
    for (i, (variant, _, _)) in variants.iter().enumerate() {
        if i % 37 == 1 {
            if let Ok(ace) = shamfinder::punycode::ace::to_ascii(variant) {
                registered.insert(format!("{ace}.com"));
            }
        }
    }

    let mut taken = 0;
    for (variant, pos, sub) in variants.iter().take(40) {
        let ace = shamfinder::punycode::ace::to_ascii(variant).expect("registrable");
        let status = if registered.contains(&format!("{ace}.com")) {
            taken += 1;
            "ALREADY REGISTERED ⚠"
        } else {
            "available"
        };
        println!(
            "  {variant}  (pos {pos}: '{sub}' U+{:04X})  {ace}.com  — {status}",
            *sub as u32
        );
    }
    if variants.len() > 40 {
        println!("  … and {} more", variants.len() - 40);
    }

    println!(
        "\nsummary: {} variants enumerated, {} already registered by third parties",
        variants.len(),
        taken
    );
    println!("recommendation: defensively register the distance-0 variants first;");
    println!("monitor the rest via the ShamFinder detection pipeline.");
}
