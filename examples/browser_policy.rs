//! Browser display-policy comparison (paper §2.2 and §7.2): how do the
//! pre-2017 policy, the current mixed-script Punycode fallback, and the
//! paper's proposed warning UI each treat a set of IDNs — and which
//! homographs slip through?
//!
//! ```sh
//! cargo run --release --example browser_policy
//! ```
//!
//! Expected output (abridged): a table of six IDNs showing each policy's
//! verdict, e.g.
//!
//! ```text
//! domain        note                   legacy    mixed-script  ShamFinder
//! gооgle.com    Cyrillic о twice       Unicode   Punycode ✋    WARN: imitates google (2 subst.)
//! фасебоок.com  whole-script Cyrillic  Unicode   Unicode       Unicode (no homograph)
//! ```
//!
//! followed by the §2.2/§7.2 takeaway that the mixed-script rule both
//! hurts benign IDNs and misses whole-script homographs.

use shamfinder::core::{display, Display, Policy};
use shamfinder::prelude::*;

fn main() {
    println!("building homoglyph database …");
    let font = SynthUnifont::v12();
    let result = build(&font, &BuildConfig::default());

    let framework = Framework::new(
        result.db,
        UcDatabase::embedded(),
        vec![
            "google".to_string(),
            "facebook".to_string(),
            "工業大学".to_string(), // non-Latin reference (paper §2.2)
        ],
        "com",
    );

    let cases = [
        ("gооgle.com", "Cyrillic о twice"),
        ("facébook.com", "Latin accent only"),
        ("фасебоок.com", "whole-script Cyrillic"),
        ("エ業大学.com", "Katakana エ for CJK 工 (paper §2.2)"),
        ("tokyo大学.com", "benign Latin + CJK mix"),
        ("google.com", "the genuine article"),
    ];

    println!(
        "\n{:<22} {:<28} {:<18} {:<18} ShamFinder",
        "domain", "note", "legacy", "mixed-script"
    );
    println!("{}", "-".repeat(110));

    for (name, note) in cases {
        let domain = DomainName::parse(name).expect("valid domain");
        let legacy = match display(&domain, Policy::Legacy) {
            Display::Unicode(_) => "Unicode",
            Display::Punycode(_) => "Punycode",
        };
        let mixed = match display(&domain, Policy::MixedScriptPunycode) {
            Display::Unicode(_) => "Unicode",
            Display::Punycode(_) => "Punycode ✋",
        };

        // The ShamFinder answer: show Unicode, but warn with context.
        let report = framework.run(std::slice::from_ref(&domain));
        let sham = match report.detections.first() {
            Some(det) => format!(
                "WARN: imitates {} ({} subst.)",
                det.reference,
                det.substitutions.len()
            ),
            None => "Unicode (no homograph)".to_string(),
        };

        let unicode_form = domain.to_unicode().unwrap_or_else(|_| name.to_string());
        println!("{unicode_form:<22} {note:<28} {legacy:<18} {mixed:<18} {sham}");
    }

    println!(
        "\nTakeaway (paper §2.2/§7.2): the mixed-script rule degrades usability for\n\
         benign IDNs yet misses whole-script homographs and CJK-internal homographs;\n\
         database-driven detection names the imitated domain instead."
    );
}
