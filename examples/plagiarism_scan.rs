//! Homoglyph-obfuscated plagiarism detection — the paper's §9 claim that
//! SimChar generalises beyond domains: "detecting obfuscated plagiarism,
//! which exploits Unicode homoglyphs."
//!
//! ```sh
//! cargo run --release --example plagiarism_scan
//! ```
//!
//! Expected output (abridged):
//!
//! ```text
//! scan: 9 of 14 words carry homoglyph substitutions (64%)
//!   mеmory         -> memory         [pos 1: 'е' (U+0435) for 'e']
//!   …
//! word-set similarity before normalisation: 0.22
//! word-set similarity after  normalisation: 1.00
//! ```
//!
//! The before/after similarity gap is the obfuscation signature.

use shamfinder::core::{scan_text, similarity_gap};
use shamfinder::prelude::*;

fn main() {
    println!("building homoglyph database …");
    let font = SynthUnifont::v12();
    let result = build(&font, &BuildConfig::default());
    let db = HomoglyphDb::new(result.db, UcDatabase::embedded());

    let source = "memory safety without garbage collection makes rust \
                  suitable for systems programming and network services";
    // The plagiarist copies the sentence and swaps in Cyrillic and
    // accented homoglyphs so string matching fails.
    let suspect = "mеmory safеty without garbagе collеction makеs rust \
                   suitablе for systеms programming and nеtwork sеrvicеs";

    println!("\nsource : {source}");
    println!("suspect: {suspect}\n");

    let scan = scan_text(&db, suspect);
    println!(
        "scan: {} of {} words carry homoglyph substitutions ({:.0}%)",
        scan.obfuscated.len(),
        scan.words,
        scan.obfuscation_rate() * 100.0
    );
    for word in scan.obfuscated.iter().take(5) {
        let subs: Vec<String> = word
            .substitutions
            .iter()
            .map(|(pos, written, norm)| {
                format!("pos {pos}: '{written}' (U+{:04X}) for '{norm}'", *written as u32)
            })
            .collect();
        println!("  {:<14} -> {:<14} [{}]", word.written, word.normalised, subs.join(", "));
    }
    if scan.obfuscated.len() > 5 {
        println!("  … and {} more", scan.obfuscated.len() - 5);
    }

    let (raw, normalised) = similarity_gap(&db, source, suspect);
    println!("\nword-set similarity before normalisation: {raw:.2}");
    println!("word-set similarity after  normalisation: {normalised:.2}");
    println!(
        "\nThe gap is the obfuscation signature: a similarity engine fed the\n\
         normalised text sees the copy that the raw comparison missed."
    );
}
