//! Quickstart: build the homoglyph database, detect a homograph, explain
//! it to the user.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Expected output (abridged; the full run takes ~1 s in release mode):
//!
//! ```text
//! building SimChar …
//! SimChar: 10955 homoglyph pairs over 10416 characters
//!
//! scanned 7 domains, 5 IDNs, 4 homographs detected:
//!
//! WARNING — use of homoglyph detected.
//! You are accessing gօօgle.com.
//! Did you mean google.com?
//!   position 1: 'օ' U+0585 (Armenian) imitates 'o' U+006F (Basic Latin)
//!   …
//! ```

use shamfinder::prelude::*;

fn main() {
    // 1. Build SimChar over the full IDNA ∩ font repertoire (≈1 s in
    //    release mode) and pair it with the consortium's UC list.
    println!("building SimChar …");
    let font = SynthUnifont::v12();
    let result = build(&font, &BuildConfig::default());
    println!(
        "SimChar: {} homoglyph pairs over {} characters",
        result.db.pair_count(),
        result.db.char_count()
    );

    // 2. Assemble the ShamFinder framework with a reference list.
    let references: Vec<String> = ["google", "facebook", "amazon", "paypal", "wikipedia"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let framework = Framework::new(
        result.db.clone(),
        UcDatabase::embedded(),
        references,
        "com",
    );

    // 3. Scan a small corpus: the paper's examples plus benign names.
    let corpus: Vec<DomainName> = [
        "gօօgle.com",          // Armenian օ (paper Fig. 2)
        "facébook.com",        // acute accent (paper §1)
        "xn--pypal-4ve.com",   // already in wire form: pаypal, Cyrillic а
        "g\u{0ED0}\u{0ED0}gle.com", // Lao digit zero (paper Fig. 12)
        "amazon.com",          // the original, not a homograph
        "wikipedia.com",
        "中文网站.com",         // benign IDN
    ]
    .iter()
    .map(|s| DomainName::parse(s).expect("valid domain"))
    .collect();

    let report = framework.run(&corpus);
    println!(
        "\nscanned {} domains, {} IDNs, {} homographs detected:\n",
        report.total_domains, report.idn_count,
        report.detections.len()
    );

    // 4. Explain each detection the way the paper's Fig. 12 UI would.
    for detection in &report.detections {
        let warning = Warning::from_detection(detection, "com");
        println!("{}", warning.render_text());
        println!(
            "  highlighted: {}\n",
            warning.emphasised_stem(&detection.idn_unicode)
        );
    }

    // 5. Revert a malicious IDN back to its target (paper §6.4).
    let db = HomoglyphDb::new(result.db, UcDatabase::embedded());
    let reverted = revert_stem(&db, "gօօgle");
    println!("revert(gօօgle) = {:?}", reverted.stem());
}
