//! Resilient ingest: run the always-on fault-tolerant front-end over a
//! deliberately hostile multi-TLD feed and watch nothing fall over.
//!
//! `examples/phishing_hunt.rs` drives the detection stack over a
//! *clean* zone-diff stream; a production monitor does not get clean
//! streams. Records arrive corrupted, transports stall and disconnect
//! mid-zone, and a worker can panic with a batch in flight. This
//! example wires the robustness layers around the same stack:
//!
//! 1. **Fault harness** — `sham_workload::faults` wraps the synthetic
//!    multi-TLD feed in a *seeded* schedule of corrupt records, stalls
//!    and disconnects (1.5% of events), plus one forced worker panic
//!    on an early `.com` flush. Same seed, same faults, every run.
//! 2. **Ingest layer** — `IngestService` runs the feed through a
//!    connector with retry/backoff and malformed-record quarantine,
//!    into bounded per-lane queues, drained by batch through a
//!    `SessionRouter` with panic isolation (poison → reopen → retry).
//! 3. **The ledger** — the final `IngestReport` accounts every
//!    delivered event exactly once: routed + shed + lost, with
//!    quarantined counted per feed and sampled for triage.
//!
//! The punchline: run it with `--faults 0` (edit `FAULT_PERMILLE`) and
//! the router report is *bit-identical* to `phishing_hunt`'s batch
//! replay of the same events — the queues, retries and recovery
//! machinery are unobservable until something actually breaks.
//!
//! ```sh
//! cargo run --release --example resilient_ingest
//! ```
//!
//! Expected output (abridged; counts deterministic for the built-in
//! seed):
//!
//! A panic backtrace appears on stderr mid-run: that is the scheduled
//! worker panic being *caught* by the drainer (std's panic hook prints
//! before `catch_unwind` returns) — the ledger then shows it isolated
//! and retried with zero events lost.
//!
//! ```text
//! ingesting 2x,xxx events across com/net/org (15‰ scheduled faults, seed 0xBADF00D) …
//! == per-TLD detections ==
//! com    1x,xxx domains   xxx detections
//! net     x,xxx domains   xxx detections
//! org     x,xxx domains   xxx detections
//! == robustness ledger ==
//! quarantined        xxx (sampled: xx)
//! feed retries       xx
//! lane panics        1 (0 events lost)
//! accounted          2x,xxx = routed 2x,xxx + shed 0 + lost 0  ✓
//! ```

use shamfinder::core::{DetectionIndex, IngestConfig, IngestService, RetryPolicy};
use shamfinder::prelude::*;
use shamfinder::workload::{
    lane_panic_hook, multi_tld_event_stream, FaultSchedule, FaultyZoneFeed, FeedStats,
    MultiTldConfig, StreamConfig, Workload, WorkloadConfig,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xBAD_F00D;
const FAULT_PERMILLE: u32 = 15;

fn main() {
    // The same synthetic world the clean example uses, scaled down.
    let workload = Workload::generate(WorkloadConfig {
        benign_ascii: 18_000,
        benign_idns: 1_500,
        reference_size: 2_000,
        homograph_permille: 100,
        seed: SEED,
    });
    let font = SynthUnifont::v12();
    let built = build(
        &font,
        &BuildConfig {
            repertoire: Repertoire::Blocks(vec![
                "Basic Latin",
                "Latin-1 Supplement",
                "Cyrillic",
                "Greek and Coptic",
            ]),
            ..BuildConfig::default()
        },
    );
    let index = DetectionIndex::shared(
        HomoglyphDb::new(built.db, UcDatabase::embedded()),
        workload.references.iter().cloned(),
    );

    let events = multi_tld_event_stream(
        &workload,
        &MultiTldConfig {
            base: StreamConfig { churn_every: 4_096, churn_size: 2, seed: SEED },
            ..MultiTldConfig::default()
        },
    );
    let schedule = FaultSchedule::seeded(SEED, events.len() as u64, FAULT_PERMILLE)
        .with_lane_panic("com", 2);
    println!(
        "ingesting {} events across com/net/org ({FAULT_PERMILLE}\u{2030} scheduled faults, seed {SEED:#X}) …",
        events.len()
    );

    let stats = FeedStats::shared();
    let feed = FaultyZoneFeed::new("synthetic", events, schedule.clone(), Arc::clone(&stats));
    let service = IngestService::new(
        Arc::clone(&index),
        IngestConfig {
            queue_capacity: 2_048,
            batch_capacity: 1_024,
            // Keep the demo quick: back off from a fault in 1 ms steps.
            retry: RetryPolicy { base: Duration::from_millis(1), ..RetryPolicy::default() },
            tlds: Some(vec!["com".into(), "net".into(), "org".into()]),
            ..IngestConfig::default()
        },
    )
    .with_flush_hook(Arc::new(lane_panic_hook(&schedule)));
    let report = service.run(vec![Box::new(feed)]);

    println!("== per-TLD detections ==");
    for lane in &report.router.per_tld {
        println!(
            "{:<6} {:>7} domains {:>5} detections",
            lane.tld,
            lane.report.total_domains,
            lane.report.detections.len()
        );
    }

    println!("== robustness ledger ==");
    println!(
        "quarantined        {} (sampled: {})",
        report.quarantined,
        report.quarantine.len()
    );
    println!("feed retries       {}", report.feeds[0].retries);
    println!(
        "lane panics        {} ({} events lost)",
        report.lane_panics, report.lost
    );
    let delivered = stats.registrations.load(Ordering::Relaxed);
    let ok = report.events_accounted() == delivered;
    println!(
        "accounted          {} = routed {} + shed {} + lost {}  {}",
        report.events_accounted(),
        report.router.total_domains(),
        report.shed,
        report.lost,
        if ok { "\u{2713}" } else { "MISMATCH" },
    );
    assert!(ok, "accounting identity violated");
}
