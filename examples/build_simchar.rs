//! Build SimChar from scratch and print the database characterisation —
//! the paper's Tables 1–5 and example figures — then export the database
//! to its portable text format.
//!
//! ```sh
//! cargo run --release --example build_simchar -- /tmp/simchar.txt
//! ```
//!
//! Expected output (abridged): the Tables 1–5 characterisation with the
//! paper's values in brackets for comparison, then the export:
//!
//! ```text
//! == Table 1: characters and homoglyph pairs per set (paper values in brackets) ==
//! Set                                      # characters  # pairs
//! --------------------------------------------------------------
//! IDNA [123,006]                                122,377      n/a
//! SimChar [12,686 / 13,208]                      10,416   10,955
//! …
//! ```
//!
//! The absolute counts differ from the paper (SynthUnifont is a clean-room
//! font, not GNU Unifont) but the set relationships and orders of
//! magnitude match.

use shamfinder::measure::CharDbContext;
use shamfinder::simchar::SimCharDb;

fn main() {
    let out_path = std::env::args().nth(1);

    println!("building SimChar over the full repertoire …\n");
    let ctx = CharDbContext::create();

    println!("{}", ctx.table1().render());
    println!("{}", ctx.table2().render());
    println!("{}", ctx.table3().render());
    println!("{}", ctx.table4().render());
    println!("{}", ctx.table5().render());
    println!("{}", ctx.figure6().render());

    if let Some(path) = out_path {
        let text = ctx.build.db.to_text();
        std::fs::write(&path, &text).expect("write SimChar export");
        println!("exported {} pairs to {path}", ctx.build.db.pair_count());

        // Round-trip check: the export loads back identically.
        let loaded = SimCharDb::from_text(&text).expect("parse own export");
        assert_eq!(loaded.pair_count(), ctx.build.db.pair_count());
        println!("round-trip verified ✓");
    } else {
        println!("(pass a path to export the database, e.g. /tmp/simchar.txt)");
    }
}
