//! Build SimChar from scratch and print the database characterisation —
//! the paper's Tables 1–5 and example figures — then export the database
//! to its portable text format.
//!
//! ```sh
//! cargo run --release --example build_simchar -- /tmp/simchar.txt
//! ```

use shamfinder::measure::CharDbContext;
use shamfinder::simchar::SimCharDb;

fn main() {
    let out_path = std::env::args().nth(1);

    println!("building SimChar over the full repertoire …\n");
    let ctx = CharDbContext::create();

    println!("{}", ctx.table1().render());
    println!("{}", ctx.table2().render());
    println!("{}", ctx.table3().render());
    println!("{}", ctx.table4().render());
    println!("{}", ctx.table5().render());
    println!("{}", ctx.figure6().render());

    if let Some(path) = out_path {
        let text = ctx.build.db.to_text();
        std::fs::write(&path, &text).expect("write SimChar export");
        println!("exported {} pairs to {path}", ctx.build.db.pair_count());

        // Round-trip check: the export loads back identically.
        let loaded = SimCharDb::from_text(&text).expect("parse own export");
        assert_eq!(loaded.pair_count(), ctx.build.db.pair_count());
        println!("round-trip verified ✓");
    } else {
        println!("(pass a path to export the database, e.g. /tmp/simchar.txt)");
    }
}
